//===- RodiniaParticlefilter.cpp - Rodinia particlefilter -----*- C++ -*-===//
///
/// Particle filter: the Rodinia benchmark with the most reductions in
/// Fig 8c (nine). Likelihood/weight sums and the position estimates
/// are icc-visible; the min/max weight folds (fmin/fmax) and the
/// helper-mediated neighborhood sums are not.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double weights[8192];
double arrayX[8192];
double arrayY[8192];
double likelihood[8192];

double neighborhood(double *buf, int i) {
  return buf[i] * 0.5 + buf[(i + 1) % 8192] * 0.5;
}

void init_data() {
  int i;
  int n = cfg[1] + 8192;
  for (i = 0; i < n; i++) {
    weights[i] = 1.0 / 8192.0 + 0.00001 * sin(0.01 * i);
    arrayX[i] = 20.0 + 3.0 * sin(0.005 * i);
    arrayY[i] = 20.0 + 3.0 * cos(0.004 * i);
    likelihood[i] = 0.5 + 0.3 * sin(0.008 * i + 0.6);
  }
  cfg[0] = 8192;
}

int main() {
  init_data();
  // Main computation phase (relaxation over the data set);
  // carries no reduction and dominates runtime.
  int sim_t;
  int sim_k;
  int sim_steps = cfg[3] + 22;
  for (sim_t = 0; sim_t < sim_steps; sim_t++)
    for (sim_k = 0; sim_k < 8192; sim_k++)
      arrayY[sim_k] = arrayY[sim_k] * 0.9995 +
                     0.00025 * arrayY[(sim_k + 7) % 8192];

  int nparticles = cfg[0];
  int i;

  // icc-visible reductions.
  double sum_weights = 0.0;
  for (i = 0; i < nparticles; i++)
    sum_weights = sum_weights + weights[i];
  double xe = 0.0;
  for (i = 0; i < nparticles; i++)
    xe = xe + arrayX[i] * weights[i];
  double ye = 0.0;
  for (i = 0; i < nparticles; i++)
    ye = ye + arrayY[i] * weights[i];
  double lsum = 0.0;
  for (i = 0; i < nparticles; i++)
    lsum = lsum + likelihood[i];

  // fmin/fmax folds: ours alone.
  double wmax = 0.0;
  for (i = 0; i < nparticles; i++)
    wmax = fmax(wmax, weights[i]);
  double wmin = 1000000.0;
  for (i = 0; i < nparticles; i++)
    wmin = fmin(wmin, weights[i]);

  // Helper-mediated sums: ours alone.
  double nx = 0.0;
  for (i = 0; i < nparticles; i++)
    nx = nx + neighborhood(arrayX, i);
  double ny = 0.0;
  for (i = 0; i < nparticles; i++)
    ny = ny + neighborhood(arrayY, i);
  double nl = 0.0;
  for (i = 0; i < nparticles; i++)
    nl = nl + neighborhood(likelihood, i);

  print_f64(sum_weights);
  print_f64(xe);
  print_f64(ye);
  print_f64(lsum);
  print_f64(wmax);
  print_f64(wmin);
  print_f64(nx);
  print_f64(ny);
  print_f64(nl);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaParticlefilter() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "particlefilter";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/9, /*OurHistograms=*/0, /*Icc=*/4,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  return B;
}
