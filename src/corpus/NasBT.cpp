//===- NasBT.cpp - NAS BT model -------------------------------*- C++ -*-===//
///
/// Block-tridiagonal solver model. Structure: a runtime-count time
/// loop driving constant-bound stencil sweeps (Polly's SCoP harvest in
/// the paper comes mostly from BT/LU/SP/MG), one constant-bound norm
/// reduction that lands inside a SCoP (the BT hit in Fig 8a), and
/// three runtime-bound reductions that only icc and the constraint
/// approach see.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double u[66][66];
double rhs[66][66];
double forcing[66][66];
double r[2048];
double p[2048];

void init_data() {
  int i;
  int j;
  for (i = 0; i < 66; i++) {
    for (j = 0; j < 66; j++) {
      u[i][j] = sin(0.7 * i + 0.3 * j);
      rhs[i][j] = cos(0.2 * i) * 0.5;
      forcing[i][j] = 0.25 * cos(0.11 * (i + j));
    }
  }
  for (i = 0; i < 2048; i++) {
    r[i] = sin(0.001 * i);
    p[i] = cos(0.002 * i);
  }
  cfg[0] = 2048;
  cfg[1] = 3;
}

// Constant-bound sweeps: x/y solves and the rhs update. Each of the
// three nests is one SCoP per time step region.
void sweeps() {
  int i;
  int j;
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      rhs[i][j] = forcing[i][j] + 0.2 * (u[i-1][j] + u[i+1][j]);
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      u[i][j] = u[i][j] + 0.8 * rhs[i][j];
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      forcing[i][j] = 0.99 * forcing[i][j] + 0.01 * u[i][j];
}

int main() {
  init_data();
  int steps = cfg[1];
  int n = cfg[0];
  int it;
  int i;
  int j;

  for (it = 0; it < steps; it++)
    sweeps();

  // Additional constant-bound stencil passes (6 more SCoPs).
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      u[i][j] = 0.5 * (u[i][j-1] + u[i][j+1]);
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      rhs[i][j] = rhs[i][j] - 0.1 * u[i][j];
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      forcing[i][j] = forcing[i][j] + 0.05 * rhs[i][j];
  for (j = 1; j < 65; j++)
    for (i = 1; i < 65; i++)
      u[i][j] = u[i][j] + 0.01 * forcing[i][j];
  for (i = 0; i < 66; i++)
    for (j = 0; j < 66; j++)
      rhs[i][j] = rhs[i][j] * 0.999;
  for (i = 0; i < 66; i++)
    for (j = 0; j < 66; j++)
      forcing[i][j] = forcing[i][j] * 1.001;

  // Constant-bound norm reduction: inside a SCoP, so Polly+Reduction
  // finds it too (the single BT hit in Fig 8a).
  double rnorm = 0.0;
  for (i = 0; i < 2048; i++)
    rnorm = rnorm + r[i] * r[i];

  // Runtime-bound reductions: outside any SCoP, icc still finds them.
  double dotrp = 0.0;
  for (i = 0; i < n; i++)
    dotrp = dotrp + r[i] * p[i];
  double pnorm = 0.0;
  for (i = 0; i < n; i++)
    pnorm = pnorm + p[i] * p[i];
  double usum = 0.0;
  for (i = 0; i < n; i++)
    usum = usum + r[(3*i) % 2048] * 0.5;

  print_f64(rnorm);
  print_f64(dotrp);
  print_f64(pnorm);
  print_f64(usum);
  print_f64(u[32][32]);
  return 0;
}
)";

BenchmarkProgram gr::makeNasBT() {
  BenchmarkProgram B;
  B.Suite = "NAS";
  B.Name = "BT";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/4, /*OurHistograms=*/0, /*Icc=*/4,
                /*Polly=*/1, /*SCoPs=*/10, /*ReductionSCoPs=*/1};
  return B;
}
