//===- RodiniaCfd.cpp - Rodinia cfd model ---------------------*- C++ -*-===//
///
/// CFD Euler solver: density and energy integrals over the unstructured
/// mesh (icc-visible) plus the CFL time-step computation, a min fold
/// with fmin that icc refuses.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double density[8192];
double energy[8192];
double velocity[8192];

double cell_energy(double *rho, double *e, int i) {
  return rho[i] * e[i];
}

void init_data() {
  int i;
  int n = cfg[1] + 8192;
  for (i = 0; i < n; i++) {
    density[i] = 1.0 + 0.1 * sin(0.007 * i);
    energy[i] = 2.5 + 0.2 * cos(0.009 * i);
    velocity[i] = 0.3 + 0.05 * sin(0.011 * i + 0.4);
  }
  cfg[0] = 8192;
}

int main() {
  init_data();
  // Main computation phase (relaxation over the data set);
  // carries no reduction and dominates runtime.
  int sim_t;
  int sim_k;
  int sim_steps = cfg[3] + 7;
  for (sim_t = 0; sim_t < sim_steps; sim_t++)
    for (sim_k = 0; sim_k < 8192; sim_k++)
      velocity[sim_k] = velocity[sim_k] * 0.9995 +
                     0.00025 * velocity[(sim_k + 7) % 8192];

  int ncells = cfg[0];
  int i;

  double total_mass = 0.0;
  for (i = 0; i < ncells; i++)
    total_mass = total_mass + density[i];

  double total_energy = 0.0;
  for (i = 0; i < ncells; i++)
    total_energy = total_energy + cell_energy(density, energy, i);

  // CFL condition: minimum time step over all cells.
  double dt = 1000000.0;
  for (i = 0; i < ncells; i++)
    dt = fmin(dt, 1.0 / (velocity[i] + 0.001));

  print_f64(total_mass);
  print_f64(total_energy);
  print_f64(dt);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaCfd() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "cfd";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/3, /*OurHistograms=*/0, /*Icc=*/1,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  return B;
}
