//===- RodiniaPathfinder.cpp - Rodinia pathfinder model -------*- C++ -*-===//
///
/// Grid path finding: a dynamic program whose row-to-row minimum
/// chain is a carried dependence, not a reduction. One constant-bound
/// affine weight pass is the single pathfinder SCoP.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
int wall[128][64];
int result_row[64];
int weight_row[64];

void init_data() {
  int i;
  int j;
  for (i = 0; i < 128; i++)
    for (j = 0; j < 64; j++) {
      double v = 10.0 + 9.0 * sin(0.17 * i + 0.29 * j);
      wall[i][j] = v;
    }
  cfg[0] = 128;
}

int main() {
  init_data();
  int nrows = cfg[0];
  int t;
  int j;

  // One affine constant-bound pass: the pathfinder SCoP.
  for (j = 0; j < 64; j++)
    weight_row[j] = 2 * j + 1;

  for (j = 0; j < cfg[1] + 64; j++)
    result_row[j] = wall[0][j % 64];

  // Wavefront DP over the rows: carried min chain.
  for (t = 1; t < nrows; t++) {
    for (j = 1; j < 63; j++) {
      int best = result_row[j];
      if (result_row[j-1] < best)
        best = result_row[j-1];
      if (result_row[j+1] < best)
        best = result_row[j+1];
      result_row[j] = best + wall[t][j];
    }
  }

  print_i64(result_row[32]);
  print_i64(weight_row[10]);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaPathfinder() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "pathfinder";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/0, /*OurHistograms=*/0, /*Icc=*/0,
                /*Polly=*/0, /*SCoPs=*/1, /*ReductionSCoPs=*/0};
  return B;
}
