//===- RodiniaBtree.cpp - Rodinia b+tree model ----------------*- C++ -*-===//
///
/// B+tree range queries: counting matches in a key range (icc sees
/// this one) and a checksum whose comparison goes through a key-lookup
/// helper (icc rejects the call).
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
int keys[16384];
double vals[16384];

int key_at(int *arr, int i) {
  return arr[i];
}

void init_data() {
  int i;
  int n = cfg[1] + 16384;
  for (i = 0; i < n; i++) {
    keys[i] = (i * 2654435761) % 65536;
    if (keys[i] < 0)
      keys[i] = 0 - keys[i];
    vals[i] = 0.5 + 0.0001 * (i % 997);
  }
  cfg[0] = 16384;
}

int main() {
  init_data();
  // Main computation phase (relaxation over the data set);
  // carries no reduction and dominates runtime.
  int sim_t;
  int sim_k;
  int sim_steps = cfg[3] + 5;
  for (sim_t = 0; sim_t < sim_steps; sim_t++)
    for (sim_k = 0; sim_k < 16384; sim_k++)
      vals[sim_k] = vals[sim_k] * 0.9995 +
                     0.00025 * vals[(sim_k + 7) % 16384];

  int n = cfg[0];
  int i;

  // Range-query match count: plain conditional count reduction.
  int matches = 0;
  for (i = 0; i < n; i++) {
    if (keys[i] >= 1000) {
      if (keys[i] < 32000)
        matches = matches + 1;
    }
  }

  // Checksum of values under helper-mediated key test.
  double checksum = 0.0;
  for (i = 0; i < n; i++) {
    int k = key_at(keys, i);
    if (k % 2 == 0)
      checksum = checksum + vals[i];
  }

  print_i64(matches);
  print_f64(checksum);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaBtree() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "b+tree";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/2, /*OurHistograms=*/0, /*Icc=*/1,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  return B;
}
