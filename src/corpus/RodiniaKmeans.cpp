//===- RodiniaKmeans.cpp - Rodinia kmeans model ---------------*- C++ -*-===//
///
/// K-means clustering. The membership histogram (cluster population
/// counts) is detected, but its loop carries an inner per-feature
/// loop, which makes the exploitation pass refuse it -- exactly the
/// kmeans failure the paper reports in §6.3. Two scalar reductions
/// (delta count, total distortion) stay icc-visible.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
int membership[32768];
double feature[32768];
double feat_scratch[32768];
int cluster_count[64];

void init_data() {
  int i;
  int n = cfg[1] + 32768;
  for (i = 0; i < n; i++) {
    membership[i] = (i * 97) % 64;
    feature[i] = sin(0.004 * i);
  }
  cfg[0] = 32768;
}

int main() {
  init_data();
  int npoints = cfg[0];
  int i;
  int f;

  // Membership histogram with a nested per-feature scratch update:
  // detected as a histogram, refused by the parallelizer (nested
  // loop), as in the paper.
  for (i = 0; i < npoints; i++) {
    for (f = 0; f < 4; f++)
      feat_scratch[(i % 8192) * 4 + f] = feature[(i % 8192) * 4 + f] * 0.5;
    cluster_count[membership[i]]++;
  }

  // Convergence measures: icc-friendly scalar reductions.
  double distortion = 0.0;
  for (i = 0; i < npoints; i++) {
    double d = feature[i] - 0.25;
    distortion = distortion + d * d;
  }
  int moved = 0;
  for (i = 0; i < npoints; i++) {
    if (membership[i] != (i * 89) % 64)
      moved = moved + 1;
  }

  print_i64(cluster_count[5]);
  print_f64(distortion);
  print_i64(moved);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaKmeans() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "kmeans";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/2, /*OurHistograms=*/1, /*Icc=*/2,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  B.InSpeedupStudy = true;
  return B;
}
