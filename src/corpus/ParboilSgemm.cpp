//===- ParboilSgemm.cpp - Parboil sgemm model -----------------*- C++ -*-===//
///
/// Dense matrix multiply: the one Parboil program where a scalar
/// reduction (the dot-product accumulator of the inner k loop) is
/// simultaneously visible to the constraint approach, icc and Polly --
/// and the only Parboil benchmark where scalar reductions dominate
/// runtime in Fig 13.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
double A[96][96];
double Bm[96][96];
double C[96][96];

void init_data() {
  int i;
  int j;
  for (i = 0; i < 96; i++)
    for (j = 0; j < 96; j++) {
      A[i][j] = sin(0.01 * i + 0.02 * j);
      Bm[i][j] = cos(0.015 * i - 0.01 * j);
    }
}

int main() {
  init_data();
  int i;
  int j;
  int k;

  // The whole triple nest is one SCoP; the k accumulator is the
  // reduction everyone agrees on.
  for (i = 0; i < 96; i++) {
    for (j = 0; j < 96; j++) {
      double s = 0.0;
      for (k = 0; k < 96; k++)
        s = s + A[i][k] * Bm[k][j];
      C[i][j] = s;
    }
  }

  print_f64(C[0][0]);
  print_f64(C[31][64]);
  print_f64(C[95][95]);
  return 0;
}
)";

BenchmarkProgram gr::makeParboilSgemm() {
  BenchmarkProgram B;
  B.Suite = "Parboil";
  B.Name = "sgemm";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/1, /*OurHistograms=*/0, /*Icc=*/1,
                /*Polly=*/1, /*SCoPs=*/1, /*ReductionSCoPs=*/1};
  return B;
}
