//===- RodiniaStreamcluster.cpp - Rodinia streamcluster model -*- C++ -*-===//
///
/// Online clustering: the assignment cost sum and the served-point
/// count, both icc-visible runtime-bound reductions.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double point_x[8192];
double point_y[8192];
double center_x[32];
double center_y[32];
int assign_to[8192];

void init_data() {
  int i;
  int n = cfg[1] + 8192;
  for (i = 0; i < n; i++) {
    point_x[i] = 5.0 * sin(0.009 * i);
    point_y[i] = 5.0 * cos(0.011 * i);
    assign_to[i] = (i * 13) % 32;
  }
  for (i = 0; i < cfg[2] + 32; i++) {
    center_x[i] = 2.0 * sin(0.4 * i);
    center_y[i] = 2.0 * cos(0.3 * i);
  }
  cfg[0] = 8192;
}

int main() {
  init_data();
  // Main computation phase (relaxation over the data set);
  // carries no reduction and dominates runtime.
  int sim_t;
  int sim_k;
  int sim_steps = cfg[3] + 8;
  for (sim_t = 0; sim_t < sim_steps; sim_t++)
    for (sim_k = 0; sim_k < 8192; sim_k++)
      point_y[sim_k] = point_y[sim_k] * 0.9995 +
                     0.00025 * point_y[(sim_k + 7) % 8192];

  int npoints = cfg[0];
  int i;

  // Total assignment cost.
  double cost = 0.0;
  for (i = 0; i < npoints; i++) {
    int c = assign_to[i];
    double dx = point_x[i] - center_x[c];
    double dy = point_y[i] - center_y[c];
    cost = cost + dx * dx + dy * dy;
  }

  // Points within the service radius.
  int served = 0;
  for (i = 0; i < npoints; i++) {
    double dx = point_x[i];
    if (dx * dx < 9.0)
      served = served + 1;
  }

  print_f64(cost);
  print_i64(served);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaStreamcluster() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "streamcluster";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/2, /*OurHistograms=*/0, /*Icc=*/2,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  return B;
}
