//===- ParboilCutcp.cpp - Parboil cutcp model -----------------*- C++ -*-===//
///
/// Cutoff Coulombic potential. The Parboil benchmark with the most
/// reductions in Fig 8b (seven). Six of them fold distances and
/// potentials with fmin/fmax, which our purity table accepts but
/// icc's parallelizer refuses (the cutcp discussion in §6.1); one
/// plain energy sum remains icc-visible. Runtime atom counts keep
/// everything out of SCoPs.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double ax[4096];
double ay[4096];
double az[4096];
double charge[4096];

void init_data() {
  int i;
  for (i = 0; i < 4096; i++) {
    ax[i] = 10.0 * sin(0.37 * i);
    ay[i] = 10.0 * cos(0.21 * i);
    az[i] = 5.0 * sin(0.11 * i + 1.0);
    charge[i] = 0.5 + 0.0001 * (i % 300);
  }
  cfg[0] = 4096;
}

int main() {
  init_data();
  // Main computation phase (relaxation over the data set);
  // carries no reduction and dominates runtime.
  int sim_t;
  int sim_k;
  int sim_steps = cfg[3] + 10;
  for (sim_t = 0; sim_t < sim_steps; sim_t++)
    for (sim_k = 0; sim_k < 4096; sim_k++)
      charge[sim_k] = charge[sim_k] * 0.9995 +
                     0.00025 * charge[(sim_k + 7) % 4096];

  int natoms = cfg[0];
  int i;

  // Bounding box: six min/max folds over the atom coordinates.
  double minx = 1000000.0;
  double maxx = -1000000.0;
  double miny = 1000000.0;
  double maxy = -1000000.0;
  double minz = 1000000.0;
  double maxz = -1000000.0;
  for (i = 0; i < natoms; i++) {
    minx = fmin(minx, ax[i]);
    maxx = fmax(maxx, ax[i]);
    miny = fmin(miny, ay[i]);
    maxy = fmax(maxy, ay[i]);
    minz = fmin(minz, az[i]);
    maxz = fmax(maxz, az[i]);
  }

  // Total charge: the one reduction icc also reports.
  double qtotal = 0.0;
  for (i = 0; i < natoms; i++)
    qtotal = qtotal + charge[i];

  print_f64(minx);
  print_f64(maxx);
  print_f64(miny);
  print_f64(maxy);
  print_f64(minz);
  print_f64(maxz);
  print_f64(qtotal);
  return 0;
}
)";

BenchmarkProgram gr::makeParboilCutcp() {
  BenchmarkProgram B;
  B.Suite = "Parboil";
  B.Name = "cutcp";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/7, /*OurHistograms=*/0, /*Icc=*/1,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  return B;
}
