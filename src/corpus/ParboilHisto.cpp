//===- ParboilHisto.cpp - Parboil histo model -----------------*- C++ -*-===//
///
/// The Parboil histogramming benchmark: a large 2-D histogram over an
/// input image. The histogram dominates runtime, and its sheer size
/// makes privatization expensive -- which is why the paper's Fig 15
/// shows only a moderate speedup for the constraint approach and none
/// at all for the lock-based upstream parallel version.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
int img[262144];
int bins[24576];

void init_data() {
  int i;
  int n = cfg[1] + 262144;
  for (i = 0; i < n; i++)
    img[i] = (i * 40503) % 24576;
}

int main() {
  init_data();
  int npixels = cfg[0] + 262144;
  int i;

  int frames = cfg[2] + 4;
  int f;
  for (f = 0; f < frames; f++)
    for (i = 0; i < npixels; i++)
      bins[img[i]]++;

  print_i64(bins[0]);
  print_i64(bins[1024]);
  print_i64(bins[24575]);
  return 0;
}
)";

BenchmarkProgram gr::makeParboilHisto() {
  BenchmarkProgram B;
  B.Suite = "Parboil";
  B.Name = "histo";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/0, /*OurHistograms=*/1, /*Icc=*/0,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  B.InSpeedupStudy = true;
  return B;
}
