//===- ParboilSad.cpp - Parboil sad model ---------------------*- C++ -*-===//
///
/// Sum-of-absolute-differences for motion estimation: the per-block
/// SAD accumulates straight into the output array (no scalar phi), and
/// the data-dependent absolute value keeps the nest out of SCoPs. One
/// separate affine copy pass is the single sad SCoP of Fig 10.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double cur_frame[16384];
double ref_frame[16384];
double sad_out[256];
double best_out[256];

void init_data() {
  int i;
  int n = cfg[1] + 16384;
  for (i = 0; i < n; i++) {
    cur_frame[i] = sin(0.013 * i);
    ref_frame[i] = sin(0.013 * i + 0.21);
  }
  cfg[0] = 256;
}

int main() {
  init_data();
  int nblocks = cfg[0];
  int b;
  int p;
  int i;

  // SAD per block, accumulated in memory (sad_out[b] is invariant in
  // the pixel loop: an accumulator in memory, not a histogram).
  for (b = 0; b < nblocks; b++) {
    for (p = 0; p < 64; p++) {
      double d = cur_frame[b*64 + p] - ref_frame[b*64 + p];
      if (d < 0.0)
        d = 0.0 - d;
      sad_out[b] = sad_out[b] + d;
    }
  }

  // Affine copy of the results: the one sad SCoP.
  for (i = 0; i < 256; i++)
    best_out[i] = sad_out[i] * 0.5 + 1.0;

  print_f64(sad_out[3]);
  print_f64(best_out[200]);
  return 0;
}
)";

BenchmarkProgram gr::makeParboilSad() {
  BenchmarkProgram B;
  B.Suite = "Parboil";
  B.Name = "sad";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/0, /*OurHistograms=*/0, /*Icc=*/0,
                /*Polly=*/0, /*SCoPs=*/1, /*ReductionSCoPs=*/0};
  return B;
}
