//===- RodiniaHotspot3D.cpp - Rodinia hotspot3D model ---------*- C++ -*-===//
///
/// 3-D thermal simulation: two constant-bound affine sweeps and one
/// runtime-bound energy reduction (icc-visible).
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double t3d[18][18][18];
double t3d_out[18][18][18];

void init_data() {
  int i;
  int j;
  int k;
  for (i = 0; i < 18; i++)
    for (j = 0; j < 18; j++)
      for (k = 0; k < 18; k++) {
        t3d[i][j][k] = 300.0 + sin(0.2 * i + 0.3 * j + 0.1 * k);
        t3d_out[i][j][k] = 0.0;
      }
  cfg[0] = 18;
}

int main() {
  init_data();
  int n = cfg[0];
  int i;
  int j;
  int k;

  // Two affine constant-bound sweeps.
  for (i = 1; i < 17; i++)
    for (j = 1; j < 17; j++)
      for (k = 1; k < 17; k++)
        t3d_out[i][j][k] = 0.4 * t3d[i][j][k] +
                           0.1 * (t3d[i-1][j][k] + t3d[i+1][j][k] +
                                  t3d[i][j-1][k] + t3d[i][j+1][k] +
                                  t3d[i][j][k-1] + t3d[i][j][k+1]);
  for (i = 0; i < 18; i++)
    for (j = 0; j < 18; j++)
      for (k = 0; k < 18; k++)
        t3d[i][j][k] = t3d_out[i][j][k];

  // Total thermal energy under a runtime bound.
  double esum = 0.0;
  for (i = 0; i < n; i++)
    esum = esum + t3d[i][9][9];

  print_f64(esum);
  print_f64(t3d[9][9][9]);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaHotspot3D() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "hotspot3D";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/1, /*OurHistograms=*/0, /*Icc=*/1,
                /*Polly=*/0, /*SCoPs=*/2, /*ReductionSCoPs=*/0};
  return B;
}
