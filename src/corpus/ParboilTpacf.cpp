//===- ParboilTpacf.cpp - Parboil tpacf model -----------------*- C++ -*-===//
///
/// Two-point angular correlation function: the paper's most
/// interesting histogram -- the bin index is computed by a *binary
/// search* in an auxiliary bin-edge array (a read-only helper call in
/// the update's data flow). The upstream parallel version wraps the
/// update in a critical section and slows down on a big machine; the
/// privatized version scales almost linearly (Fig 15).
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double dist[131072];
double binedges[65];
int dd_hist[64];

int find_bin(double *edges, int nbins, double v) {
  int lo = 0;
  int hi = nbins;
  while (lo + 1 < hi) {
    int mid = (lo + hi) / 2;
    if (v < edges[mid])
      hi = mid;
    else
      lo = mid;
  }
  return lo;
}

void init_data() {
  int i;
  int nedges = cfg[1] + 65;
  for (i = 0; i < nedges; i++)
    binedges[i] = 0.03125 * i * 0.03125 * i;
  int n = cfg[2] + 131072;
  for (i = 0; i < n; i++)
    dist[i] = 0.0000298 * ((i * 7919) % 131072);
}

int main() {
  init_data();
  int npairs = cfg[0] + 131072;
  int i;

  // The correlation histogram: one binary search + increment per
  // pair of points, for the DD and DR passes.
  int pass;
  int passes = cfg[3] + 2;
  for (pass = 0; pass < passes; pass++) {
    for (i = 0; i < npairs; i++) {
      int b = find_bin(binedges, 64, dist[i]);
      dd_hist[b]++;
    }
  }

  print_i64(dd_hist[0]);
  print_i64(dd_hist[13]);
  print_i64(dd_hist[63]);
  return 0;
}
)";

BenchmarkProgram gr::makeParboilTpacf() {
  BenchmarkProgram B;
  B.Suite = "Parboil";
  B.Name = "tpacf";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/0, /*OurHistograms=*/1, /*Icc=*/0,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  B.InSpeedupStudy = true;
  return B;
}
