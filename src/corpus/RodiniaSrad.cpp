//===- RodiniaSrad.cpp - Rodinia srad model -------------------*- C++ -*-===//
///
/// Speckle-reducing anisotropic diffusion: the ROI statistics are
/// classic scalar reductions (mean, variance, q0); the contrast
/// extrema fold with fmin/fmax and stay invisible to icc. Three
/// constant-bound diffusion passes are the srad SCoPs of Fig 11.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double image[66][66];
double coeff[66][66];

void init_data() {
  int i;
  int j;
  for (i = 0; i < 66; i++)
    for (j = 0; j < 66; j++) {
      image[i][j] = 128.0 + 30.0 * sin(0.06 * i) * cos(0.05 * j);
      coeff[i][j] = 0.0;
    }
  cfg[0] = 64;
}

int main() {
  init_data();
  int roi = cfg[0];
  int i;
  int j;

  // ROI statistics: runtime-bound scalar reductions (icc-visible).
  double sum1 = 0.0;
  for (i = 0; i < roi; i++)
    sum1 = sum1 + image[i][10];
  double sum2 = 0.0;
  for (i = 0; i < roi; i++)
    sum2 = sum2 + image[i][10] * image[i][10];
  double qsum = 0.0;
  for (i = 0; i < roi; i++)
    qsum = qsum + image[i][20] / (image[i][30] + 200.0);

  // Contrast extrema: fmin/fmax folds (ours alone).
  double cmax = -100000.0;
  for (i = 0; i < roi; i++)
    cmax = fmax(cmax, image[i][40]);
  double cmin = 100000.0;
  for (i = 0; i < roi; i++)
    cmin = fmin(cmin, image[i][40]);

  // Three constant-bound diffusion passes: the srad SCoPs.
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      coeff[i][j] = 0.25 * (image[i-1][j] + image[i+1][j] +
                            image[i][j-1] + image[i][j+1]) - image[i][j];
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      image[i][j] = image[i][j] + 0.05 * coeff[i][j];
  for (i = 0; i < 66; i++)
    for (j = 0; j < 66; j++)
      coeff[i][j] = coeff[i][j] * 0.5;

  print_f64(sum1);
  print_f64(sum2);
  print_f64(qsum);
  print_f64(cmax);
  print_f64(cmin);
  print_f64(image[30][30]);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaSrad() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "srad";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/5, /*OurHistograms=*/0, /*Icc=*/3,
                /*Polly=*/0, /*SCoPs=*/3, /*ReductionSCoPs=*/0};
  return B;
}
