//===- NasLU.cpp - NAS LU model -------------------------------*- C++ -*-===//
///
/// LU (SSOR) solver: the richest SCoP source in the paper's Fig 9.
/// Constant-bound lower/upper sweeps provide ten SCoPs with no
/// reductions; the four residual-norm reductions all run under
/// runtime bounds, so only icc and the constraint approach see them.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double v[66][66];
double rsd[66][66];
double frct[66][66];
double flux[4096];

void init_data() {
  int i;
  int j;
  for (i = 0; i < 66; i++)
    for (j = 0; j < 66; j++) {
      v[i][j] = sin(0.05 * i) * cos(0.04 * j);
      rsd[i][j] = 0.3 * cos(0.09 * (i + j));
      frct[i][j] = 0.01 * (i - j);
    }
  for (i = 0; i < 4096; i++)
    flux[i] = sin(0.002 * i);
  cfg[0] = 4096;
  cfg[1] = 66;
}

// Lower-triangular and upper-triangular sweeps plus the right hand
// side: ten constant-bound affine nests in total.
void ssor_sweeps() {
  int i;
  int j;
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      rsd[i][j] = frct[i][j] - 0.1 * (v[i-1][j] + v[i][j-1]);
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      v[i][j] = v[i][j] + 0.9 * rsd[i][j];
  for (i = 64; i >= 1; i = i + -1)
    for (j = 1; j < 65; j++)
      rsd[i][j] = rsd[i][j] * 0.98;
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      frct[i][j] = frct[i][j] + 0.02 * v[i][j];
  for (j = 1; j < 65; j++)
    for (i = 1; i < 65; i++)
      v[i][j] = 0.5 * (v[i][j] + frct[i][j]);
}

int main() {
  init_data();
  int n = cfg[0];
  int i;
  int j;

  ssor_sweeps();

  // Five more constant-bound nests.
  for (i = 0; i < 66; i++)
    for (j = 0; j < 66; j++)
      rsd[i][j] = rsd[i][j] * 1.0001;
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      v[i][j] = v[i][j] - 0.001 * rsd[i][j];
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      frct[i][j] = frct[i][j] * 0.999;
  for (i = 0; i < 66; i++)
    for (j = 0; j < 66; j++)
      v[i][j] = v[i][j] + 0.0001;
  for (i = 1; i < 65; i++)
    for (j = 1; j < 65; j++)
      rsd[i][j] = rsd[i][j] + 0.05 * (frct[i-1][j] + frct[i+1][j]);

  // Residual norms: runtime-bound reductions.
  double n1 = 0.0;
  for (i = 0; i < n; i++)
    n1 = n1 + flux[i] * flux[i];
  double n2 = 0.0;
  for (i = 0; i < n; i++)
    n2 = n2 + flux[i] * 0.5;
  double n3 = 0.0;
  for (i = 0; i < n; i++)
    n3 = n3 + flux[(i * 3) % 4096];
  double n4 = 0.0;
  for (i = 0; i < n; i++)
    n4 = n4 + flux[i] * flux[(i + 7) % 4096];

  print_f64(n1);
  print_f64(n2);
  print_f64(n3);
  print_f64(n4);
  print_f64(v[30][30]);
  return 0;
}
)";

BenchmarkProgram gr::makeNasLU() {
  BenchmarkProgram B;
  B.Suite = "NAS";
  B.Name = "LU";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/4, /*OurHistograms=*/0, /*Icc=*/4,
                /*Polly=*/0, /*SCoPs=*/10, /*ReductionSCoPs=*/0};
  return B;
}
