//===- ParboilBfs.cpp - Parboil bfs model ---------------------*- C++ -*-===//
///
/// Breadth-first search: frontier expansion with data-dependent
/// control and indirect stores. No reduction idioms, no SCoPs -- one
/// of the many all-zero Parboil rows in Fig 8b/10.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
int edge_off[4097];
int edge_dst[16384];
int cost[4096];
int frontier[4096];

void init_data() {
  int i;
  int n1 = cfg[1] + 4097;
  int n2 = cfg[2] + 16384;
  int n3 = cfg[3] + 4096;
  for (i = 0; i < n1; i++)
    edge_off[i] = (i * 16384) / 4097;
  for (i = 0; i < n2; i++)
    edge_dst[i] = (i * 613) % 4096;
  for (i = 0; i < n3; i++) {
    cost[i] = -1;
    frontier[i] = 0;
  }
  cost[0] = 0;
  frontier[0] = 1;
  cfg[0] = 4096;
}

int main() {
  init_data();
  int nnodes = cfg[0];
  int level;
  int u;
  int e;

  for (level = 0; level < 6; level++) {
    for (u = 0; u < nnodes; u++) {
      if (frontier[u] == 1) {
        frontier[u] = 2;
        for (e = edge_off[u]; e < edge_off[u+1]; e++) {
          int v = edge_dst[e];
          if (cost[v] < 0) {
            cost[v] = cost[u] + 1;
            frontier[v] = 1;
          }
        }
      }
    }
  }

  print_i64(cost[17]);
  print_i64(cost[4095]);
  return 0;
}
)";

BenchmarkProgram gr::makeParboilBfs() {
  BenchmarkProgram B;
  B.Suite = "Parboil";
  B.Name = "bfs";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/0, /*OurHistograms=*/0, /*Icc=*/0,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  return B;
}
