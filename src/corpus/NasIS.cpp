//===- NasIS.cpp - NAS IS model -------------------------------*- C++ -*-===//
///
/// Integer Sort: the performance bottleneck is the plain key histogram
/// `key_buff[key_buff2[i]]++` (quoted verbatim in the paper). A
/// ranking pass follows, which bounds whole-program speedup for the
/// paper's reduction-only exploitation; it is an exclusive prefix sum,
/// which the post-paper "scan" spec of the idiom registry detects
/// (OurScans below). icc and Polly find nothing.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
int key_buff2[262144];
int key_buff[32768];
int rank_of[32768];

void gen_keys() {
  int i;
  int n = cfg[2] + 262144;
  for (i = 0; i < n; i++)
    key_buff2[i] = (i * 2654435761) % 32768;
}

int main() {
  gen_keys();
  int num_keys = cfg[0] + 262144;
  int i;

  // The histogram: one increment per key, over several ranking
  // iterations (NPB IS re-ranks repeatedly).
  int iters = cfg[3] + 2;
  int it;
  for (it = 0; it < iters; it++)
    for (i = 0; i < num_keys; i++)
      key_buff[key_buff2[i]]++;

  // Ranking: an exclusive prefix sum. Not a *reduction* idiom (the
  // running value escapes to rank_of every iteration), but exactly
  // the registry's scan spec.
  int nbins = cfg[1] + 32768;
  int running = 0;
  for (i = 0; i < nbins; i++) {
    rank_of[i] = running;
    running = running + key_buff[i];
  }

  print_i64(key_buff[1]);
  print_i64(key_buff[77]);
  print_i64(rank_of[32767]);
  return 0;
}
)";

BenchmarkProgram gr::makeNasIS() {
  BenchmarkProgram B;
  B.Suite = "NAS";
  B.Name = "IS";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/0, /*OurHistograms=*/1, /*Icc=*/0,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0,
                /*OurScans=*/1, /*OurArgMinMax=*/0};
  B.InSpeedupStudy = true;
  return B;
}
