//===- NasDC.cpp - NAS DC model -------------------------------*- C++ -*-===//
///
/// Data Cube: aggregation of measures into hash buckets. The view
/// computation is one histogram (hash-addressed += of a measure) plus
/// two scalar aggregates living in the same loop. The indirect store
/// makes icc reject the whole loop; nothing is affine enough for a
/// SCoP.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
int dim_a[8192];
int dim_b[8192];
double measure[8192];
double view[1024];

void init_data() {
  int i;
  int n = cfg[1] + 8192;
  for (i = 0; i < n; i++) {
    dim_a[i] = (i * 131) % 97;
    dim_b[i] = (i * 29) % 53;
    measure[i] = 0.5 + 0.001 * (i % 701);
  }
  cfg[0] = 8192;
}

int main() {
  init_data();
  int ntuples = cfg[0];
  int i;

  // Cube view aggregation: histogram over a hashed key, plus the
  // total and the tuple count as scalar reductions in the same loop.
  double total = 0.0;
  double wsum = 0.0;
  for (i = 0; i < ntuples; i++) {
    int key = (dim_a[i] * 53 + dim_b[i]) % 1024;
    view[key] = view[key] + measure[i];
    total = total + measure[i];
    wsum = wsum + 0.25;
  }

  print_f64(view[11]);
  print_f64(total);
  print_f64(wsum);
  return 0;
}
)";

BenchmarkProgram gr::makeNasDC() {
  BenchmarkProgram B;
  B.Suite = "NAS";
  B.Name = "DC";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/2, /*OurHistograms=*/1, /*Icc=*/0,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  return B;
}
