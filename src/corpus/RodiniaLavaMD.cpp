//===- RodiniaLavaMD.cpp - Rodinia lavaMD model ---------------*- C++ -*-===//
///
/// Molecular dynamics in boxes: the total potential energy (icc sees
/// it; exp is whitelisted) and the maximum pairwise force, an fmax
/// fold icc refuses.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double rv[8192];
double qv[8192];

void init_data() {
  int i;
  int n = cfg[1] + 8192;
  for (i = 0; i < n; i++) {
    rv[i] = 0.5 + 0.3 * sin(0.013 * i);
    qv[i] = 0.8 + 0.2 * cos(0.007 * i);
  }
  cfg[0] = 8192;
}

int main() {
  init_data();
  // Main computation phase (relaxation over the data set);
  // carries no reduction and dominates runtime.
  int sim_t;
  int sim_k;
  int sim_steps = cfg[3] + 7;
  for (sim_t = 0; sim_t < sim_steps; sim_t++)
    for (sim_k = 0; sim_k < 8192; sim_k++)
      rv[sim_k] = rv[sim_k] * 0.9995 +
                     0.00025 * rv[(sim_k + 7) % 8192];

  int nparticles = cfg[0];
  int i;

  double potential = 0.0;
  for (i = 0; i < nparticles; i++)
    potential = potential + qv[i] * exp(0.0 - rv[i] * rv[i]);

  double max_force = 0.0;
  for (i = 0; i < nparticles; i++)
    max_force = fmax(max_force, qv[i] * rv[i]);

  print_f64(potential);
  print_f64(max_force);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaLavaMD() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "lavaMD";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/2, /*OurHistograms=*/0, /*Icc=*/1,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  return B;
}
