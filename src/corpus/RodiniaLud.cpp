//===- RodiniaLud.cpp - Rodinia lud model ---------------------*- C++ -*-===//
///
/// LU decomposition: triangular updates whose accumulations run
/// through loop-carried dependences that are not reductions. Two
/// constant-bound affine passes are SCoPs; Fig 8c shows no reductions
/// for lud.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double mat[64][64];
double scale_row[64];

void init_data() {
  int i;
  int j;
  for (i = 0; i < 64; i++)
    for (j = 0; j < 64; j++)
      mat[i][j] = 1.0 + sin(0.03 * i * j);
  cfg[0] = 64;
}

int main() {
  init_data();
  int n = cfg[0];
  int k;
  int i;
  int j;

  // Gaussian elimination: the pivot row scaling and trailing update.
  // The k recurrence (each step reads results of the previous) is not
  // a reduction.
  for (k = 0; k < n - 1; k++) {
    for (i = k + 1; i < n; i++) {
      double m = mat[i][k] / (mat[k][k] + 3.0);
      for (j = k + 1; j < n; j++)
        mat[i][j] = mat[i][j] - m * mat[k][j];
    }
  }

  // Two affine constant-bound passes.
  for (i = 0; i < 64; i++)
    scale_row[i] = mat[i][i] * 0.5;
  for (i = 1; i < 63; i++)
    scale_row[i] = scale_row[i] + 0.25 * (scale_row[i-1] + scale_row[i+1]);

  print_f64(mat[10][10]);
  print_f64(scale_row[31]);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaLud() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "lud";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/0, /*OurHistograms=*/0, /*Icc=*/0,
                /*Polly=*/0, /*SCoPs=*/2, /*ReductionSCoPs=*/0};
  return B;
}
