//===- ParboilMriGridding.cpp - Parboil mri-gridding model ----*- C++ -*-===//
///
/// MRI gridding: samples are scattered onto a regular grid with
/// interpolation to *two* neighboring cells. The double write makes
/// the update fail the exclusive-access condition of the histogram
/// idiom, so (correctly, matching Fig 8b) nothing is reported.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double sample_val[16384];
int sample_cell[16384];
double grid[8192];

void init_data() {
  int i;
  int n = cfg[1] + 16384;
  for (i = 0; i < n; i++) {
    sample_val[i] = sin(0.017 * i);
    sample_cell[i] = (i * 389) % 8191;
  }
  cfg[0] = 16384;
}

int main() {
  init_data();
  int nsamples = cfg[0];
  int i;

  // Scatter with linear interpolation: each sample updates two bins,
  // so this is NOT a histogram reduction (the two writes interfere).
  for (i = 0; i < nsamples; i++) {
    int c = sample_cell[i];
    grid[c] = grid[c] + 0.75 * sample_val[i];
    grid[c+1] = grid[c+1] + 0.25 * sample_val[i];
  }

  print_f64(grid[100]);
  print_f64(grid[8000]);
  return 0;
}
)";

BenchmarkProgram gr::makeParboilMriGridding() {
  BenchmarkProgram B;
  B.Suite = "Parboil";
  B.Name = "mri-gridding";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/0, /*OurHistograms=*/0, /*Icc=*/0,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  return B;
}
