//===- NasEP.cpp - NAS EP model -------------------------------*- C++ -*-===//
///
/// Embarrassingly Parallel: the paper's running example (Fig 2). The
/// Gaussian-pair loop carries two scalar reductions (sx, sy) and one
/// histogram (q) under data-dependent control flow with pure sqrt/log
/// calls. icc rejects the loop because of the indirect q update; the
/// calls and the conditional keep it out of any SCoP.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
double x[65536];
double q[16];

void gen_pairs() {
  // Pseudo-random pair generation (deterministic, pure-math model of
  // the NAS linear congruential stream).
  int i;
  for (i = 0; i < 65536; i++) {
    double t = sin(0.381 * i + 0.17);
    x[i] = t * t;
  }
}

int main() {
  gen_pairs();
  int i;
  double sx = 0.0;
  double sy = 0.0;
  for (i = 0; i < 32768; i++) {
    double x1 = 2.0 * x[2*i] - 1.0;
    double x2 = 2.0 * x[2*i+1] - 1.0;
    double t1 = x1 * x1 + x2 * x2;
    if (t1 <= 1.0) {
      double t2 = sqrt(-2.0 * log(t1 + 0.0000001) / (t1 + 0.0000001));
      double t3 = x1 * t2;
      double t4 = x2 * t2;
      int l = fmax(fabs(t3), fabs(t4));
      if (l > 15)
        l = 15;
      q[l] = q[l] + 1.0;
      sx = sx + t3;
      sy = sy + t4;
    }
  }
  int k;
  for (k = 0; k < 16; k++)
    print_f64(q[k]);
  print_f64(sx);
  print_f64(sy);
  return 0;
}
)";

BenchmarkProgram gr::makeNasEP() {
  BenchmarkProgram B;
  B.Suite = "NAS";
  B.Name = "EP";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/2, /*OurHistograms=*/1, /*Icc=*/0,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0};
  B.InSpeedupStudy = true;
  return B;
}
