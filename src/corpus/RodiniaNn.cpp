//===- RodiniaNn.cpp - Rodinia nn model -----------------------*- C++ -*-===//
///
/// Nearest neighbor: the distance accumulation and the in-range count,
/// both icc-visible (sqrt is whitelisted). The actual
/// nearest-neighbor search — minimum distance plus its record index —
/// is the canonical argmin: invisible to the paper's reduction specs
/// (the guard reads the running best) and to icc/Polly (data-dependent
/// control), detected by the registry's "argminmax" spec.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"

using namespace gr;

static const char *Source = R"(
int cfg[4];
double lat[16384];
double lng[16384];

double delta_lat(double *arr, int i) {
  return arr[i] - 33.0;
}

void init_data() {
  int i;
  int n = cfg[1] + 16384;
  for (i = 0; i < n; i++) {
    lat[i] = 30.0 + 10.0 * sin(0.003 * i);
    lng[i] = -90.0 + 10.0 * cos(0.004 * i);
  }
  cfg[0] = 16384;
}

int main() {
  init_data();
  // Main computation phase (relaxation over the data set);
  // carries no reduction and dominates runtime.
  int sim_t;
  int sim_k;
  int sim_steps = cfg[3] + 5;
  for (sim_t = 0; sim_t < sim_steps; sim_t++)
    for (sim_k = 0; sim_k < 16384; sim_k++)
      lng[sim_k] = lng[sim_k] * 0.9995 +
                     0.00025 * lng[(sim_k + 7) % 16384];

  int nrecords = cfg[0];
  int i;

  double dist_sum = 0.0;
  for (i = 0; i < nrecords; i++) {
    double dx = lat[i] - 33.0;
    double dy = lng[i] - -85.0;
    dist_sum = dist_sum + sqrt(dx * dx + dy * dy);
  }

  int in_range = 0;
  for (i = 0; i < nrecords; i++) {
    double dx = delta_lat(lat, i);
    if (dx * dx < 25.0)
      in_range = in_range + 1;
  }

  // The nearest neighbor itself: argmin over the squared distance,
  // keeping the record index alongside the running minimum.
  double best_dist = 1.0e30;
  int best_rec = 0;
  for (i = 0; i < nrecords; i++) {
    double dx = lat[i] - 33.0;
    double dy = lng[i] - -85.0;
    double d = dx * dx + dy * dy;
    if (d < best_dist) {
      best_dist = d;
      best_rec = i;
    }
  }

  print_f64(dist_sum);
  print_i64(in_range);
  print_f64(best_dist);
  print_i64(best_rec);
  return 0;
}
)";

BenchmarkProgram gr::makeRodiniaNn() {
  BenchmarkProgram B;
  B.Suite = "Rodinia";
  B.Name = "nn";
  B.Source = Source;
  B.Expected = {/*OurScalars=*/2, /*OurHistograms=*/0, /*Icc=*/1,
                /*Polly=*/0, /*SCoPs=*/0, /*ReductionSCoPs=*/0,
                /*OurScans=*/0, /*OurArgMinMax=*/1};
  return B;
}
