//===- CodeGen.cpp --------------------------------------------*- C++ -*-===//

#include "frontend/CodeGen.h"

#include "analysis/CFGUtils.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "ir/Type.h"

#include <map>
#include <vector>

using namespace gr;
using namespace gr::ast;

namespace {

/// Signature entry for the builtin table.
struct BuiltinSpec {
  const char *Name;
  unsigned NumParams;
  bool DoubleParams; // All params f64 when true, i64 otherwise.
  bool ReturnsDouble;
  bool ReturnsVoid;
  bool Pure;
};

constexpr BuiltinSpec Builtins[] = {
    {"sqrt", 1, true, true, false, true},
    {"log", 1, true, true, false, true},
    {"exp", 1, true, true, false, true},
    {"sin", 1, true, true, false, true},
    {"cos", 1, true, true, false, true},
    {"fabs", 1, true, true, false, true},
    {"floor", 1, true, true, false, true},
    {"fmin", 2, true, true, false, true},
    {"fmax", 2, true, true, false, true},
    {"pow", 2, true, true, false, true},
    {"imin", 2, false, false, false, true},
    {"imax", 2, false, false, false, true},
    {"print_f64", 1, true, false, true, false},
    {"print_i64", 1, false, false, true, false},
    {"gr_rand", 0, false, true, false, false},
    {"gr_rand_seed", 1, false, false, true, false},
};

/// One visible variable: its storage address plus the declared type of
/// the storage (an array type for array variables, a struct type for
/// struct variables).
struct VarBinding {
  Value *Address;
  Type *Contained;
};

/// One declared struct: the uniqued IR type plus the member names in
/// declaration order (a member's GEP index is its position here).
struct StructInfo {
  StructType *Ty = nullptr;
  std::vector<std::string> MemberNames;
};

/// The lowering context for one translation unit.
class CodeGen {
public:
  CodeGen(const TranslationUnit &TU, std::string ModuleName,
          FrontendDiag *Diag)
      : TU(TU), M(std::make_unique<Module>(std::move(ModuleName))),
        B(*M), Diag(Diag) {}

  std::unique_ptr<Module> run() {
    if (!buildStructs())
      return nullptr;
    for (const GlobalDecl &GD : TU.Globals) {
      Type *Ty = lowerType(GD.Type, GD.Line, GD.Col);
      if (!Ty || Ty->isVoid())
        return failAt(GD.Line, GD.Col, "invalid global type"), nullptr;
      if (GlobalScope.count(GD.Name))
        return failAt(GD.Line, GD.Col,
                      "redefinition of global " + GD.Name),
               nullptr;
      GlobalVariable *GV = M->createGlobal(GD.Name, Ty);
      GlobalScope[GD.Name] = {GV, Ty};
    }
    for (const FunctionDecl &FD : TU.Functions) {
      if (!emitFunction(FD))
        return nullptr;
    }
    return Failed ? nullptr : std::move(M);
  }

private:
  //===--------------------------------------------------------------===//
  // Diagnostics and types
  //===--------------------------------------------------------------===//

  void failAt(unsigned Line, unsigned Col, const std::string &Msg) {
    if (!Failed && Diag)
      *Diag = {Line, Col, Msg};
    Failed = true;
  }
  void failAt(const Expr &E, const std::string &Msg) {
    failAt(E.Line, E.Col, Msg);
  }
  void failAt(const Stmt &S, const std::string &Msg) {
    failAt(S.Line, S.Col, Msg);
  }

  TypeContext &types() { return M->getTypeContext(); }

  /// Lowers the base of a TypeSpec (before pointers and dims). Struct
  /// tags resolve against the unit's struct declarations.
  Type *lowerBase(const TypeSpec &TS, unsigned Line, unsigned Col) {
    switch (TS.BaseType) {
    case TypeSpec::Base::Int:
      return types().getInt64();
    case TypeSpec::Base::Double:
      return types().getFloat64();
    case TypeSpec::Base::Void:
      return types().getVoid();
    case TypeSpec::Base::Struct: {
      auto It = StructsByTag.find(TS.StructName);
      if (It == StructsByTag.end()) {
        failAt(Line, Col, "unknown struct " + TS.StructName);
        return nullptr;
      }
      return It->second.Ty;
    }
    }
    return nullptr;
  }

  /// Lowers a TypeSpec. Array dims wrap outermost-first.
  Type *lowerType(const TypeSpec &TS, unsigned Line, unsigned Col) {
    Type *Ty = lowerBase(TS, Line, Col);
    if (!Ty)
      return nullptr;
    for (unsigned I = 0; I != TS.PointerDepth; ++I)
      Ty = types().getPointer(Ty);
    for (size_t I = TS.Dims.size(); I != 0; --I) {
      if (TS.Dims[I - 1] <= 0) {
        failAt(Line, Col, "array dimension must be positive");
        return nullptr;
      }
      Ty = types().getArray(Ty, static_cast<uint64_t>(TS.Dims[I - 1]));
    }
    return Ty;
  }

  /// Registers every struct declaration, in order. A member may point
  /// to an earlier struct; self-referential members are rejected since
  /// the type is only uniqued once the member list is complete.
  bool buildStructs() {
    for (const StructDecl &SD : TU.Structs) {
      if (StructsByTag.count(SD.Name)) {
        failAt(SD.Line, SD.Col, "redefinition of struct " + SD.Name);
        return false;
      }
      StructInfo Info;
      std::vector<Type *> Members;
      for (const StructMember &SM : SD.Members) {
        Type *Ty = lowerType(SM.Type, SM.Line, SM.Col);
        if (!Ty)
          return false;
        if (!Ty->isScalar() && !Ty->isPointer()) {
          failAt(SM.Line, SM.Col, "struct member " + SM.Name +
                                      " must be a scalar or pointer");
          return false;
        }
        for (const std::string &Prev : Info.MemberNames) {
          if (Prev == SM.Name) {
            failAt(SM.Line, SM.Col, "duplicate member " + SM.Name +
                                        " in struct " + SD.Name);
            return false;
          }
        }
        Info.MemberNames.push_back(SM.Name);
        Members.push_back(Ty);
      }
      Info.Ty = types().getStruct(std::move(Members));
      StructsByTag.emplace(SD.Name, std::move(Info));
    }
    return true;
  }

  /// Finds \p Name in the struct \p ST. Structs are structural, so two
  /// tags can share one IR type; the lookup scans every tag with this
  /// shape and insists they agree on the member's position.
  int memberIndex(const StructType *ST, const std::string &Name,
                  const Expr &At) {
    int Found = -1;
    bool Ambiguous = false;
    for (const auto &[Tag, Info] : StructsByTag) {
      if (Info.Ty != ST)
        continue;
      for (size_t I = 0; I != Info.MemberNames.size(); ++I) {
        if (Info.MemberNames[I] != Name)
          continue;
        if (Found >= 0 && Found != static_cast<int>(I))
          Ambiguous = true;
        Found = static_cast<int>(I);
      }
    }
    if (Found < 0) {
      failAt(At, "no member named " + Name + " in " + ST->getString());
      return -1;
    }
    if (Ambiguous) {
      failAt(At, "member " + Name + " is ambiguous between struct tags "
                                    "sharing the layout " +
                     ST->getString());
      return -1;
    }
    return Found;
  }

  //===--------------------------------------------------------------===//
  // Scopes
  //===--------------------------------------------------------------===//

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  const VarBinding *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    auto Found = GlobalScope.find(Name);
    return Found == GlobalScope.end() ? nullptr : &Found->second;
  }

  bool declare(const std::string &Name, VarBinding Binding, unsigned Line,
               unsigned Col) {
    if (Scopes.back().count(Name)) {
      failAt(Line, Col, "redefinition of " + Name);
      return false;
    }
    Scopes.back()[Name] = Binding;
    return true;
  }

  /// Creates an alloca in the entry block (grouped at the top so
  /// mem2reg sees them all).
  AllocaInst *createEntryAlloca(Type *Ty, const std::string &Name) {
    auto *AI = new AllocaInst(types(), Ty);
    AI->setName(Name);
    Entry->insertAt(NumEntryAllocas++, std::unique_ptr<Instruction>(AI));
    return AI;
  }

  //===--------------------------------------------------------------===//
  // Conversions
  //===--------------------------------------------------------------===//

  Value *toBool(Value *V, const Expr &At) {
    if (!V)
      return nullptr;
    Type *Ty = V->getType();
    if (Ty->isInt1())
      return V;
    if (Ty->isInt64())
      return B.createCmp(CmpInst::Predicate::NE, V, B.getInt64(0));
    if (Ty->isFloat64())
      return B.createCmp(CmpInst::Predicate::ONE, V, B.getFloat(0.0));
    failAt(At, "cannot use this value as a condition");
    return nullptr;
  }

  Value *convert(Value *V, Type *Target, const Expr &At) {
    if (!V)
      return nullptr;
    Type *Ty = V->getType();
    if (Ty == Target)
      return V;
    if (Ty->isInt1() && Target->isInt64())
      return B.createCast(CastInst::CastKind::ZExt, V);
    if (Ty->isInt1() && Target->isFloat64())
      return B.createCast(
          CastInst::CastKind::SIToFP,
          B.createCast(CastInst::CastKind::ZExt, V));
    if (Ty->isInt64() && Target->isFloat64())
      return B.createCast(CastInst::CastKind::SIToFP, V);
    if (Ty->isFloat64() && Target->isInt64())
      return B.createCast(CastInst::CastKind::FPToSI, V);
    if (Ty->isInt64() && Target->isInt1())
      return toBool(V, At);
    failAt(At, "cannot convert " + Ty->getString() + " to " +
                   Target->getString());
    return nullptr;
  }

  /// Usual arithmetic conversions: makes both operands i64 or f64.
  bool unifyArith(Value *&L, Value *&R, const Expr &At) {
    if (!L || !R)
      return false;
    if (L->getType()->isInt1())
      L = convert(L, types().getInt64(), At);
    if (R->getType()->isInt1())
      R = convert(R, types().getInt64(), At);
    if (!L || !R)
      return false;
    if (L->getType() == R->getType())
      return true;
    if (L->getType()->isFloat64())
      R = convert(R, types().getFloat64(), At);
    else if (R->getType()->isFloat64())
      L = convert(L, types().getFloat64(), At);
    else {
      failAt(At, "incompatible operand types " +
                     L->getType()->getString() + " and " +
                     R->getType()->getString());
      return false;
    }
    return L && R;
  }

  //===--------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------===//

  Function *getOrCreateBuiltin(const std::string &Name) {
    for (const BuiltinSpec &Spec : Builtins) {
      if (Name != Spec.Name)
        continue;
      if (Function *Existing = M->getFunction(Name))
        return Existing;
      Type *ParamTy =
          Spec.DoubleParams ? types().getFloat64() : types().getInt64();
      std::vector<Type *> Params(Spec.NumParams, ParamTy);
      Type *Ret = Spec.ReturnsVoid ? types().getVoid()
                  : Spec.ReturnsDouble ? types().getFloat64()
                                       : types().getInt64();
      FunctionType *FT =
          types().getFunction(Ret, std::move(Params));
      return M->createDeclaration(Name, FT, Spec.Pure);
    }
    return nullptr;
  }

  bool emitFunction(const FunctionDecl &FD) {
    if (FD.ReturnType.BaseType == TypeSpec::Base::Struct &&
        FD.ReturnType.PointerDepth == 0) {
      failAt(FD.Line, FD.Col, "functions cannot return a struct by value");
      return false;
    }
    Type *RetTy = lowerBase(FD.ReturnType, FD.Line, FD.Col);
    if (!RetTy)
      return false;
    for (unsigned I = 0; I != FD.ReturnType.PointerDepth; ++I)
      RetTy = types().getPointer(RetTy);
    std::vector<Type *> ParamTys;
    for (const ParamDecl &PD : FD.Params) {
      Type *Ty = lowerType(PD.Type, PD.Line, PD.Col);
      if (!Ty || Ty->isVoid() || Ty->isStruct()) {
        failAt(PD.Line, PD.Col, "invalid parameter type for " + PD.Name);
        return false;
      }
      ParamTys.push_back(Ty);
    }
    FunctionType *FT = types().getFunction(RetTy, std::move(ParamTys));

    Function *Existing = M->getFunction(FD.Name);
    if (Existing && (!Existing->isDeclaration() || !FD.Body)) {
      failAt(FD.Line, FD.Col, "redefinition of function " + FD.Name);
      return false;
    }
    if (!FD.Body) {
      if (!Existing)
        M->createDeclaration(FD.Name, FT, /*Pure=*/false);
      return true;
    }
    // A previous forward declaration is replaced in place by adding
    // blocks to it; our corpus declares before defining only via the
    // natural top-down order, so a fresh function suffices.
    Function *F = Existing ? Existing : M->createFunction(FD.Name, FT);
    if (F->getFunctionType() != FT) {
      failAt(FD.Line, FD.Col, "declaration type mismatch for " + FD.Name);
      return false;
    }

    CurFn = F;
    Entry = F->createBlock("entry");
    NumEntryAllocas = 0;
    B.setInsertBlock(Entry);
    Scopes.clear();
    pushScope();

    // Return machinery: single exit block.
    RetBlock = F->createBlock("fn_exit");
    RetSlot = nullptr;
    if (!RetTy->isVoid()) {
      RetSlot = createEntryAlloca(RetTy, "retval");
      B.createStore(RetTy->isFloat64()
                        ? static_cast<Value *>(B.getFloat(0.0))
                        : static_cast<Value *>(B.getInt64(0)),
                    RetSlot);
    }

    // Spill parameters into allocas so they are assignable.
    for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I) {
      Argument *Arg = F->getArg(I);
      Arg->setName(FD.Params[I].Name);
      AllocaInst *Slot =
          createEntryAlloca(Arg->getType(), FD.Params[I].Name + ".addr");
      B.createStore(Arg, Slot);
      if (!declare(FD.Params[I].Name, {Slot, Arg->getType()},
                   FD.Params[I].Line, FD.Params[I].Col))
        return false;
    }

    emitBlock(*FD.Body);
    if (Failed)
      return false;

    // Fall-through path into the single exit.
    if (!B.getInsertBlock()->getTerminator())
      B.createBr(RetBlock);
    B.setInsertBlock(RetBlock);
    if (RetSlot)
      B.createRet(B.createLoad(RetSlot, "ret.load"));
    else
      B.createRet();

    removeUnreachableBlocks(*F);
    popScope();
    return !Failed;
  }

  void removeUnreachableBlocks(Function &F) {
    std::set<BasicBlock *> Live = reachableBlocks(F);
    std::vector<BasicBlock *> Dead;
    for (BasicBlock *BB : F)
      if (!Live.count(BB))
        Dead.push_back(BB);
    for (BasicBlock *BB : Dead)
      for (Instruction *I : *BB)
        I->dropAllReferences();
    for (BasicBlock *BB : Dead)
      F.eraseBlock(BB);
  }

  //===--------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------===//

  void emitStmt(const Stmt &S) {
    if (Failed)
      return;
    switch (S.getKind()) {
    case Stmt::StmtKind::Block:
      pushScope();
      emitBlock(cast<BlockStmt>(S));
      popScope();
      return;
    case Stmt::StmtKind::Decl:
      emitDecl(cast<DeclStmt>(S));
      return;
    case Stmt::StmtKind::Expr:
      emitExpr(*cast<ExprStmt>(S).Expression);
      return;
    case Stmt::StmtKind::If:
      emitIf(cast<IfStmt>(S));
      return;
    case Stmt::StmtKind::For:
      emitFor(cast<ForStmt>(S));
      return;
    case Stmt::StmtKind::While:
      emitWhile(cast<WhileStmt>(S));
      return;
    case Stmt::StmtKind::Return:
      emitReturn(cast<ReturnStmt>(S));
      return;
    case Stmt::StmtKind::Break:
    case Stmt::StmtKind::Continue: {
      if (LoopTargets.empty()) {
        failAt(S, "break/continue outside of a loop");
        return;
      }
      BasicBlock *Target = S.getKind() == Stmt::StmtKind::Break
                               ? LoopTargets.back().first
                               : LoopTargets.back().second;
      B.createBr(Target);
      startDeadBlock("after.jump");
      return;
    }
    }
  }

  void emitBlock(const BlockStmt &Block) {
    for (const StmtPtr &S : Block.Stmts) {
      if (Failed)
        return;
      emitStmt(*S);
    }
  }

  /// After an unconditional control transfer, subsequent statements in
  /// the surrounding block are unreachable; park them in a fresh block
  /// that removeUnreachableBlocks discards.
  void startDeadBlock(const std::string &Name) {
    BasicBlock *Dead = CurFn->createBlock(Name);
    B.setInsertBlock(Dead);
  }

  void emitDecl(const DeclStmt &DS) {
    Type *Ty = lowerType(DS.Type, DS.Line, DS.Col);
    if (!Ty || Ty->isVoid()) {
      failAt(DS, "invalid variable type for " + DS.Name);
      return;
    }
    AllocaInst *Slot = createEntryAlloca(Ty, DS.Name);
    if (!declare(DS.Name, {Slot, Ty}, DS.Line, DS.Col))
      return;
    if (DS.Init) {
      if (Ty->isArray()) {
        failAt(DS, "array initializers are not supported");
        return;
      }
      if (Ty->isStruct()) {
        failAt(DS, "struct initializers are not supported");
        return;
      }
      Value *Init = emitExpr(*DS.Init);
      Init = convert(Init, Ty, *DS.Init);
      if (Init)
        B.createStore(Init, Slot);
    }
  }

  void emitIf(const IfStmt &If) {
    Value *Cond = toBool(emitExpr(*If.Cond), *If.Cond);
    if (!Cond)
      return;
    BasicBlock *ThenBB = CurFn->createBlock("if.then");
    BasicBlock *EndBB = CurFn->createBlock("if.end");
    BasicBlock *ElseBB = If.Else ? CurFn->createBlock("if.else") : EndBB;
    B.createCondBr(Cond, ThenBB, ElseBB);

    B.setInsertBlock(ThenBB);
    pushScope();
    emitStmt(*If.Then);
    popScope();
    if (!B.getInsertBlock()->getTerminator())
      B.createBr(EndBB);

    if (If.Else) {
      B.setInsertBlock(ElseBB);
      pushScope();
      emitStmt(*If.Else);
      popScope();
      if (!B.getInsertBlock()->getTerminator())
        B.createBr(EndBB);
    }
    B.setInsertBlock(EndBB);
  }

  void emitFor(const ForStmt &For) {
    pushScope(); // Scope for the init declaration.
    if (For.Init)
      emitStmt(*For.Init);
    if (Failed) {
      popScope();
      return;
    }

    BasicBlock *Header = CurFn->createBlock("for.header");
    BasicBlock *Body = CurFn->createBlock("for.body");
    BasicBlock *Latch = CurFn->createBlock("for.latch");
    BasicBlock *Exit = CurFn->createBlock("for.exit");

    B.createBr(Header);
    B.setInsertBlock(Header);
    if (For.Cond) {
      Value *Cond = toBool(emitExpr(*For.Cond), *For.Cond);
      if (!Cond) {
        popScope();
        return;
      }
      B.createCondBr(Cond, Body, Exit);
    } else {
      B.createBr(Body);
    }

    B.setInsertBlock(Body);
    LoopTargets.push_back({Exit, Latch});
    pushScope();
    emitStmt(*For.Body);
    popScope();
    LoopTargets.pop_back();
    if (!B.getInsertBlock()->getTerminator())
      B.createBr(Latch);

    B.setInsertBlock(Latch);
    if (For.Step)
      emitExpr(*For.Step);
    B.createBr(Header);

    B.setInsertBlock(Exit);
    popScope();
  }

  void emitWhile(const WhileStmt &While) {
    BasicBlock *Header = CurFn->createBlock("while.header");
    BasicBlock *Body = CurFn->createBlock("while.body");
    BasicBlock *Latch = CurFn->createBlock("while.latch");
    BasicBlock *Exit = CurFn->createBlock("while.exit");

    B.createBr(Header);
    B.setInsertBlock(Header);
    Value *Cond = toBool(emitExpr(*While.Cond), *While.Cond);
    if (!Cond)
      return;
    B.createCondBr(Cond, Body, Exit);

    B.setInsertBlock(Body);
    LoopTargets.push_back({Exit, Latch});
    pushScope();
    emitStmt(*While.Body);
    popScope();
    LoopTargets.pop_back();
    if (!B.getInsertBlock()->getTerminator())
      B.createBr(Latch);

    B.setInsertBlock(Latch);
    B.createBr(Header);
    B.setInsertBlock(Exit);
  }

  void emitReturn(const ReturnStmt &Ret) {
    if (Ret.Value) {
      if (!RetSlot) {
        failAt(Ret, "returning a value from a void function");
        return;
      }
      Value *V = emitExpr(*Ret.Value);
      V = convert(V, cast<AllocaInst>(RetSlot)->getAllocatedType(),
                  *Ret.Value);
      if (!V)
        return;
      B.createStore(V, RetSlot);
    } else if (RetSlot) {
      failAt(Ret, "non-void function must return a value");
      return;
    }
    B.createBr(RetBlock);
    startDeadBlock("after.return");
  }

  //===--------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------===//

  /// Emits \p E as an rvalue. Aggregate-typed expressions (arrays,
  /// structs) decay to a pointer to the aggregate.
  Value *emitExpr(const Expr &E) {
    if (Failed)
      return nullptr;
    switch (E.getKind()) {
    case Expr::ExprKind::IntLit:
      return B.getInt64(cast<IntLitExpr>(E).Value);
    case Expr::ExprKind::FloatLit:
      return B.getFloat(cast<FloatLitExpr>(E).Value);
    case Expr::ExprKind::VarRef:
    case Expr::ExprKind::Index:
    case Expr::ExprKind::Member: {
      auto [Addr, Contained] = emitAddr(E);
      if (!Addr)
        return nullptr;
      if (Contained->isArray() || Contained->isStruct())
        return Addr; // Decay: the address itself.
      return B.createLoad(Addr);
    }
    case Expr::ExprKind::Call:
      return emitCall(cast<CallExpr>(E));
    case Expr::ExprKind::Unary:
      return emitUnary(cast<UnaryExpr>(E));
    case Expr::ExprKind::Binary:
      return emitBinary(cast<BinaryExpr>(E));
    case Expr::ExprKind::Assign:
      return emitAssign(cast<AssignExpr>(E));
    case Expr::ExprKind::IncDec:
      return emitIncDec(cast<IncDecExpr>(E));
    case Expr::ExprKind::Ternary:
      return emitTernary(cast<TernaryExpr>(E));
    }
    return nullptr;
  }

  /// Emits \p E as an lvalue address. Returns {address, contained
  /// type}; the contained type is an array type for (partially
  /// indexed) arrays and a struct type for struct values.
  std::pair<Value *, Type *> emitAddr(const Expr &E) {
    if (Failed)
      return {nullptr, nullptr};
    if (const auto *Var = dyn_cast<VarRefExpr>(&E)) {
      const VarBinding *Binding = lookup(Var->Name);
      if (!Binding) {
        failAt(E, "unknown variable " + Var->Name);
        return {nullptr, nullptr};
      }
      return {Binding->Address, Binding->Contained};
    }
    if (const auto *Idx = dyn_cast<IndexExpr>(&E)) {
      Value *Base = emitExpr(*Idx->Base);
      if (!Base)
        return {nullptr, nullptr};
      auto *PT = dyn_cast<PointerType>(Base->getType());
      if (!PT) {
        failAt(E, "indexing a non-pointer value");
        return {nullptr, nullptr};
      }
      if (PT->getPointee()->isStruct()) {
        // A GEP into a struct pointee selects a member, so it cannot
        // carry a runtime index; struct pointers are single-object
        // references in MiniC.
        failAt(E, "cannot index a pointer to a struct; use '->'");
        return {nullptr, nullptr};
      }
      Value *Index =
          convert(emitExpr(*Idx->Index), types().getInt64(), *Idx->Index);
      if (!Index)
        return {nullptr, nullptr};
      GEPInst *GEP = B.createGEP(Base, Index);
      return {GEP, GEP->getElementType()};
    }
    if (const auto *Mem = dyn_cast<MemberExpr>(&E)) {
      Value *Base = nullptr;
      StructType *ST = nullptr;
      if (Mem->IsArrow) {
        Value *Ptr = emitExpr(*Mem->Base);
        if (!Ptr)
          return {nullptr, nullptr};
        auto *PT = dyn_cast<PointerType>(Ptr->getType());
        if (!PT || !PT->getPointee()->isStruct()) {
          failAt(E, "'->' requires a pointer to a struct");
          return {nullptr, nullptr};
        }
        Base = Ptr;
        ST = cast<StructType>(PT->getPointee());
      } else {
        auto [Addr, Contained] = emitAddr(*Mem->Base);
        if (!Addr)
          return {nullptr, nullptr};
        if (!Contained->isStruct()) {
          failAt(E, Contained->isPointer()
                        ? "'.' on a pointer value; use '->'"
                        : "'.' requires a struct value");
          return {nullptr, nullptr};
        }
        Base = Addr;
        ST = cast<StructType>(Contained);
      }
      int Index = memberIndex(ST, Mem->Member, E);
      if (Index < 0)
        return {nullptr, nullptr};
      GEPInst *GEP = B.createGEP(Base, B.getInt64(Index));
      return {GEP, GEP->getElementType()};
    }
    failAt(E, "expression is not assignable");
    return {nullptr, nullptr};
  }

  /// Lowers the C stdlib names abs/min/max onto the VM's builtins by
  /// dispatching on the operand types. Only consulted when no user
  /// function of the same name exists, so local definitions win.
  Value *emitShim(const CallExpr &Call, bool &Handled) {
    Handled = false;
    auto Builtin = [&](const char *Name,
                       std::vector<Value *> Args) -> Value * {
      Function *F = getOrCreateBuiltin(Name);
      return F ? B.createCall(F, std::move(Args)) : nullptr;
    };
    if (Call.Callee == "abs") {
      Handled = true;
      if (Call.Args.size() != 1) {
        failAt(Call, "abs expects 1 argument");
        return nullptr;
      }
      Value *A = emitExpr(*Call.Args[0]);
      if (!A)
        return nullptr;
      if (A->getType()->isFloat64())
        return Builtin("fabs", {A});
      A = convert(A, types().getInt64(), *Call.Args[0]);
      if (!A)
        return nullptr;
      Value *Neg =
          B.createBinary(BinaryInst::BinaryOp::Sub, B.getInt64(0), A);
      return Builtin("imax", {A, Neg});
    }
    if (Call.Callee == "min" || Call.Callee == "max") {
      Handled = true;
      bool IsMin = Call.Callee == "min";
      if (Call.Args.size() != 2) {
        failAt(Call, Call.Callee + " expects 2 arguments");
        return nullptr;
      }
      Value *L = emitExpr(*Call.Args[0]);
      Value *R = emitExpr(*Call.Args[1]);
      if (!unifyArith(L, R, Call))
        return nullptr;
      bool IsFloat = L->getType()->isFloat64();
      return Builtin(IsFloat ? (IsMin ? "fmin" : "fmax")
                             : (IsMin ? "imin" : "imax"),
                     {L, R});
    }
    return nullptr;
  }

  Value *emitCall(const CallExpr &Call) {
    Function *Callee = M->getFunction(Call.Callee);
    if (!Callee) {
      bool Handled = false;
      Value *Shimmed = emitShim(Call, Handled);
      if (Handled)
        return Shimmed;
      Callee = getOrCreateBuiltin(Call.Callee);
    }
    if (!Callee) {
      failAt(Call, "unknown function " + Call.Callee);
      return nullptr;
    }
    FunctionType *FT = Callee->getFunctionType();
    if (FT->getNumParams() != Call.Args.size()) {
      failAt(Call, "wrong number of arguments to " + Call.Callee +
                       ": expected " +
                       std::to_string(FT->getNumParams()) + ", got " +
                       std::to_string(Call.Args.size()));
      return nullptr;
    }
    std::vector<Value *> Args;
    for (unsigned I = 0, E = FT->getNumParams(); I != E; ++I) {
      Value *Arg = emitExpr(*Call.Args[I]);
      if (!Arg)
        return nullptr;
      // Array arguments decay to pointers; accept ptr-to-array where a
      // ptr-to-element is expected by inserting a zero GEP.
      Type *Want = FT->getParamType(I);
      if (Arg->getType() != Want && Arg->getType()->isPointer() &&
          Want->isPointer()) {
        auto *HavePtr = cast<PointerType>(Arg->getType());
        if (HavePtr->getPointee()->isArray())
          Arg = B.createGEP(Arg, B.getInt64(0));
      }
      if (Arg->getType() != Want)
        Arg = convert(Arg, Want, *Call.Args[I]);
      if (!Arg)
        return nullptr;
      Args.push_back(Arg);
    }
    return B.createCall(Callee, Args);
  }

  Value *emitUnary(const UnaryExpr &U) {
    Value *Sub = emitExpr(*U.Sub);
    if (!Sub)
      return nullptr;
    switch (U.Operator) {
    case UnaryExpr::Op::Plus:
      return Sub;
    case UnaryExpr::Op::Neg:
      if (Sub->getType()->isInt1())
        Sub = convert(Sub, types().getInt64(), *U.Sub);
      if (!Sub)
        return nullptr;
      if (Sub->getType()->isFloat64())
        return B.createBinary(BinaryInst::BinaryOp::FSub, B.getFloat(0.0),
                              Sub);
      return B.createBinary(BinaryInst::BinaryOp::Sub, B.getInt64(0), Sub);
    case UnaryExpr::Op::Not: {
      Value *Cond = toBool(Sub, *U.Sub);
      if (!Cond)
        return nullptr;
      return B.createBinary(BinaryInst::BinaryOp::Xor, Cond,
                            B.getBool(true));
    }
    }
    return nullptr;
  }

  Value *emitBinary(const BinaryExpr &Bin) {
    using Op = BinaryExpr::Op;
    // Short-circuit logical operators get real control flow so that
    // the branch structure of the source survives into the IR.
    if (Bin.Operator == Op::LogicalAnd || Bin.Operator == Op::LogicalOr)
      return emitShortCircuit(Bin);

    Value *L = emitExpr(*Bin.LHS);
    Value *R = emitExpr(*Bin.RHS);
    if (!unifyArith(L, R, Bin))
      return nullptr;
    bool IsFloat = L->getType()->isFloat64();

    switch (Bin.Operator) {
    case Op::Add:
      return B.createBinary(IsFloat ? BinaryInst::BinaryOp::FAdd
                                    : BinaryInst::BinaryOp::Add,
                            L, R);
    case Op::Sub:
      return B.createBinary(IsFloat ? BinaryInst::BinaryOp::FSub
                                    : BinaryInst::BinaryOp::Sub,
                            L, R);
    case Op::Mul:
      return B.createBinary(IsFloat ? BinaryInst::BinaryOp::FMul
                                    : BinaryInst::BinaryOp::Mul,
                            L, R);
    case Op::Div:
      return B.createBinary(IsFloat ? BinaryInst::BinaryOp::FDiv
                                    : BinaryInst::BinaryOp::SDiv,
                            L, R);
    case Op::Rem:
      if (IsFloat) {
        failAt(Bin, "%% requires integer operands");
        return nullptr;
      }
      return B.createBinary(BinaryInst::BinaryOp::SRem, L, R);
    case Op::Lt:
      return B.createCmp(IsFloat ? CmpInst::Predicate::OLT
                                 : CmpInst::Predicate::SLT,
                         L, R);
    case Op::Le:
      return B.createCmp(IsFloat ? CmpInst::Predicate::OLE
                                 : CmpInst::Predicate::SLE,
                         L, R);
    case Op::Gt:
      return B.createCmp(IsFloat ? CmpInst::Predicate::OGT
                                 : CmpInst::Predicate::SGT,
                         L, R);
    case Op::Ge:
      return B.createCmp(IsFloat ? CmpInst::Predicate::OGE
                                 : CmpInst::Predicate::SGE,
                         L, R);
    case Op::Eq:
      return B.createCmp(IsFloat ? CmpInst::Predicate::OEQ
                                 : CmpInst::Predicate::EQ,
                         L, R);
    case Op::Ne:
      return B.createCmp(IsFloat ? CmpInst::Predicate::ONE
                                 : CmpInst::Predicate::NE,
                         L, R);
    case Op::LogicalAnd:
    case Op::LogicalOr:
      break;
    }
    return nullptr;
  }

  Value *emitShortCircuit(const BinaryExpr &Bin) {
    bool IsAnd = Bin.Operator == BinaryExpr::Op::LogicalAnd;
    AllocaInst *Slot = createEntryAlloca(types().getInt1(), "sc.tmp");

    Value *L = toBool(emitExpr(*Bin.LHS), *Bin.LHS);
    if (!L)
      return nullptr;
    B.createStore(L, Slot);
    BasicBlock *RHSBB = CurFn->createBlock(IsAnd ? "and.rhs" : "or.rhs");
    BasicBlock *EndBB = CurFn->createBlock(IsAnd ? "and.end" : "or.end");
    if (IsAnd)
      B.createCondBr(L, RHSBB, EndBB);
    else
      B.createCondBr(L, EndBB, RHSBB);

    B.setInsertBlock(RHSBB);
    Value *R = toBool(emitExpr(*Bin.RHS), *Bin.RHS);
    if (!R)
      return nullptr;
    B.createStore(R, Slot);
    B.createBr(EndBB);

    B.setInsertBlock(EndBB);
    return B.createLoad(Slot);
  }

  Value *emitAssign(const AssignExpr &Assign) {
    auto [Addr, Contained] = emitAddr(*Assign.LHS);
    if (!Addr)
      return nullptr;
    if (Contained->isArray()) {
      failAt(Assign, "cannot assign to an array");
      return nullptr;
    }
    if (Contained->isStruct()) {
      failAt(Assign, "cannot assign to a struct; assign its members");
      return nullptr;
    }
    Value *RHS = emitExpr(*Assign.RHS);
    if (!RHS)
      return nullptr;

    if (Assign.Operator != AssignExpr::Op::Assign) {
      Value *Old = B.createLoad(Addr);
      Value *L = Old, *R = RHS;
      if (!unifyArith(L, R, Assign))
        return nullptr;
      bool IsFloat = L->getType()->isFloat64();
      BinaryInst::BinaryOp Op;
      switch (Assign.Operator) {
      case AssignExpr::Op::AddAssign:
        Op = IsFloat ? BinaryInst::BinaryOp::FAdd
                     : BinaryInst::BinaryOp::Add;
        break;
      case AssignExpr::Op::SubAssign:
        Op = IsFloat ? BinaryInst::BinaryOp::FSub
                     : BinaryInst::BinaryOp::Sub;
        break;
      case AssignExpr::Op::MulAssign:
        Op = IsFloat ? BinaryInst::BinaryOp::FMul
                     : BinaryInst::BinaryOp::Mul;
        break;
      case AssignExpr::Op::DivAssign:
        Op = IsFloat ? BinaryInst::BinaryOp::FDiv
                     : BinaryInst::BinaryOp::FDiv;
        if (!IsFloat)
          Op = BinaryInst::BinaryOp::SDiv;
        break;
      default:
        return nullptr;
      }
      RHS = B.createBinary(Op, L, R);
    }

    RHS = convert(RHS, Contained, *Assign.RHS);
    if (!RHS)
      return nullptr;
    B.createStore(RHS, Addr);
    return RHS;
  }

  Value *emitIncDec(const IncDecExpr &Inc) {
    auto [Addr, Contained] = emitAddr(*Inc.LHS);
    if (!Addr)
      return nullptr;
    if (!Contained->isScalar()) {
      failAt(Inc, "++/-- requires a scalar");
      return nullptr;
    }
    Value *Old = B.createLoad(Addr);
    Value *New;
    if (Contained->isFloat64())
      New = B.createBinary(Inc.IsIncrement ? BinaryInst::BinaryOp::FAdd
                                           : BinaryInst::BinaryOp::FSub,
                           Old, B.getFloat(1.0));
    else
      New = B.createBinary(Inc.IsIncrement ? BinaryInst::BinaryOp::Add
                                           : BinaryInst::BinaryOp::Sub,
                           Old, B.getInt64(1));
    B.createStore(New, Addr);
    return Old;
  }

  Value *emitTernary(const TernaryExpr &Ternary) {
    Value *Cond = toBool(emitExpr(*Ternary.Cond), *Ternary.Cond);
    if (!Cond)
      return nullptr;
    BasicBlock *TrueBB = CurFn->createBlock("sel.true");
    BasicBlock *FalseBB = CurFn->createBlock("sel.false");
    BasicBlock *EndBB = CurFn->createBlock("sel.end");
    B.createCondBr(Cond, TrueBB, FalseBB);

    // Evaluate both arms into a shared slot; the common scalar type is
    // decided after seeing the first arm.
    B.setInsertBlock(TrueBB);
    Value *TrueV = emitExpr(*Ternary.TrueArm);
    if (!TrueV)
      return nullptr;
    Type *ResultTy = TrueV->getType();
    if (ResultTy->isInt1())
      ResultTy = types().getInt64();
    AllocaInst *Slot = createEntryAlloca(ResultTy, "sel.tmp");
    TrueV = convert(TrueV, ResultTy, *Ternary.TrueArm);
    if (!TrueV)
      return nullptr;
    B.createStore(TrueV, Slot);
    B.createBr(EndBB);

    B.setInsertBlock(FalseBB);
    Value *FalseV = emitExpr(*Ternary.FalseArm);
    // Float arms promote the result type; re-run with a float slot is
    // avoided by always converting toward the slot type (int result
    // with a float false-arm truncates, as C would with an int lhs).
    FalseV = convert(FalseV, ResultTy, *Ternary.FalseArm);
    if (!FalseV)
      return nullptr;
    B.createStore(FalseV, Slot);
    B.createBr(EndBB);

    B.setInsertBlock(EndBB);
    return B.createLoad(Slot);
  }

  const TranslationUnit &TU;
  std::unique_ptr<Module> M;
  IRBuilder B;
  FrontendDiag *Diag;
  bool Failed = false;

  Function *CurFn = nullptr;
  BasicBlock *Entry = nullptr;
  BasicBlock *RetBlock = nullptr;
  AllocaInst *RetSlot = nullptr;
  size_t NumEntryAllocas = 0;
  std::map<std::string, StructInfo> StructsByTag;
  std::map<std::string, VarBinding> GlobalScope;
  std::vector<std::map<std::string, VarBinding>> Scopes;
  std::vector<std::pair<BasicBlock *, BasicBlock *>> LoopTargets;
};

} // namespace

std::unique_ptr<Module> gr::generateIR(const TranslationUnit &TU,
                                       std::string ModuleName,
                                       FrontendDiag *Diag) {
  return CodeGen(TU, std::move(ModuleName), Diag).run();
}

std::unique_ptr<Module> gr::generateIR(const TranslationUnit &TU,
                                       std::string ModuleName,
                                       std::string *Error) {
  FrontendDiag Diag;
  auto M = generateIR(TU, std::move(ModuleName), &Diag);
  if (!M && Error)
    *Error = Diag.str();
  return M;
}
