//===- Lexer.cpp ----------------------------------------------*- C++ -*-===//

#include "frontend/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace gr;

namespace {

const std::map<std::string, TokenKind> &keywordMap() {
  static const std::map<std::string, TokenKind> Keywords = {
      {"int", TokenKind::KwInt},         {"double", TokenKind::KwDouble},
      {"void", TokenKind::KwVoid},       {"struct", TokenKind::KwStruct},
      {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"for", TokenKind::KwFor},
      {"while", TokenKind::KwWhile},     {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},     {"continue", TokenKind::KwContinue},
  };
  return Keywords;
}

} // namespace

std::vector<Token> gr::lexSource(std::string_view Source,
                                 FrontendDiag *Diag) {
  std::vector<Token> Tokens;
  unsigned Line = 1;
  size_t I = 0, N = Source.size();
  size_t LineStart = 0; ///< Index of the first character of this line.

  // 1-based column of the character at index \p At on the current line.
  auto ColOf = [&](size_t At) {
    return static_cast<unsigned>(At - LineStart + 1);
  };
  unsigned TokCol = 1; ///< Column of the token being pushed.

  auto Push = [&](TokenKind Kind, std::string Text) {
    Tokens.push_back({Kind, std::move(Text), 0, 0.0, Line, TokCol});
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      LineStart = I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Comments.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Source[I + 1] == '*') {
      I += 2;
      while (I + 1 < N && !(Source[I] == '*' && Source[I + 1] == '/')) {
        if (Source[I] == '\n') {
          ++Line;
          LineStart = I + 1;
        }
        ++I;
      }
      I = (I + 1 < N) ? I + 2 : N;
      continue;
    }
    TokCol = ColOf(I);
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      std::string Text(Source.substr(Start, I - Start));
      auto It = keywordMap().find(Text);
      Push(It == keywordMap().end() ? TokenKind::Identifier : It->second,
           std::move(Text));
      continue;
    }
    // Numbers: integer or floating point (with '.', 'e').
    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && I + 1 < N &&
         std::isdigit(static_cast<unsigned char>(Source[I + 1])))) {
      size_t Start = I;
      bool IsFloat = false;
      while (I < N) {
        char D = Source[I];
        if (std::isdigit(static_cast<unsigned char>(D))) {
          ++I;
        } else if (D == '.') {
          IsFloat = true;
          ++I;
        } else if (D == 'e' || D == 'E') {
          IsFloat = true;
          ++I;
          if (I < N && (Source[I] == '+' || Source[I] == '-'))
            ++I;
        } else {
          break;
        }
      }
      std::string Text(Source.substr(Start, I - Start));
      Token Tok{IsFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                Text, 0, 0.0, Line, TokCol};
      if (IsFloat)
        Tok.FloatValue = std::strtod(Text.c_str(), nullptr);
      else
        Tok.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
      Tokens.push_back(std::move(Tok));
      continue;
    }
    // Operators / punctuation, longest match first.
    auto Match2 = [&](char A, char B, TokenKind Kind) {
      if (C == A && I + 1 < N && Source[I + 1] == B) {
        Push(Kind, std::string{A, B});
        I += 2;
        return true;
      }
      return false;
    };
    if (Match2('+', '+', TokenKind::PlusPlus) ||
        Match2('-', '>', TokenKind::Arrow) ||
        Match2('-', '-', TokenKind::MinusMinus) ||
        Match2('+', '=', TokenKind::PlusAssign) ||
        Match2('-', '=', TokenKind::MinusAssign) ||
        Match2('*', '=', TokenKind::StarAssign) ||
        Match2('/', '=', TokenKind::SlashAssign) ||
        Match2('<', '=', TokenKind::LessEqual) ||
        Match2('>', '=', TokenKind::GreaterEqual) ||
        Match2('=', '=', TokenKind::EqualEqual) ||
        Match2('!', '=', TokenKind::NotEqual) ||
        Match2('&', '&', TokenKind::AmpAmp) ||
        Match2('|', '|', TokenKind::PipePipe))
      continue;

    TokenKind Kind;
    switch (C) {
    case '(': Kind = TokenKind::LParen; break;
    case ')': Kind = TokenKind::RParen; break;
    case '{': Kind = TokenKind::LBrace; break;
    case '}': Kind = TokenKind::RBrace; break;
    case '[': Kind = TokenKind::LBracket; break;
    case ']': Kind = TokenKind::RBracket; break;
    case ',': Kind = TokenKind::Comma; break;
    case ';': Kind = TokenKind::Semicolon; break;
    case '?': Kind = TokenKind::Question; break;
    case ':': Kind = TokenKind::Colon; break;
    case '=': Kind = TokenKind::Assign; break;
    case '+': Kind = TokenKind::Plus; break;
    case '-': Kind = TokenKind::Minus; break;
    case '*': Kind = TokenKind::Star; break;
    case '/': Kind = TokenKind::Slash; break;
    case '%': Kind = TokenKind::Percent; break;
    case '<': Kind = TokenKind::Less; break;
    case '>': Kind = TokenKind::Greater; break;
    case '!': Kind = TokenKind::Not; break;
    case '.': Kind = TokenKind::Dot; break;
    default:
      if (Diag)
        *Diag = {Line, TokCol,
                 "unexpected character '" + std::string(1, C) + "'"};
      Push(TokenKind::End, "");
      return Tokens;
    }
    Push(Kind, std::string(1, C));
    ++I;
  }
  TokCol = ColOf(I);
  Push(TokenKind::End, "");
  return Tokens;
}

std::string_view gr::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::End: return "end of input";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::IntLiteral: return "integer literal";
  case TokenKind::FloatLiteral: return "float literal";
  case TokenKind::KwInt: return "'int'";
  case TokenKind::KwDouble: return "'double'";
  case TokenKind::KwVoid: return "'void'";
  case TokenKind::KwStruct: return "'struct'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwBreak: return "'break'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBrace: return "'{'";
  case TokenKind::RBrace: return "'}'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Comma: return "','";
  case TokenKind::Semicolon: return "';'";
  case TokenKind::Question: return "'?'";
  case TokenKind::Colon: return "':'";
  case TokenKind::Assign: return "'='";
  case TokenKind::PlusAssign: return "'+='";
  case TokenKind::MinusAssign: return "'-='";
  case TokenKind::StarAssign: return "'*='";
  case TokenKind::SlashAssign: return "'/='";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Percent: return "'%'";
  case TokenKind::PlusPlus: return "'++'";
  case TokenKind::MinusMinus: return "'--'";
  case TokenKind::Less: return "'<'";
  case TokenKind::LessEqual: return "'<='";
  case TokenKind::Greater: return "'>'";
  case TokenKind::GreaterEqual: return "'>='";
  case TokenKind::EqualEqual: return "'=='";
  case TokenKind::NotEqual: return "'!='";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Not: return "'!'";
  case TokenKind::Dot: return "'.'";
  case TokenKind::Arrow: return "'->'";
  }
  return "unknown";
}
