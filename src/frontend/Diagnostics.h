//===- Diagnostics.h - MiniC diagnostic type ------------------*- C++ -*-===//
///
/// \file
/// Structured frontend diagnostics, mirroring IRParseError: every
/// lexer, parser and codegen error carries the 1-based line and column
/// of the offending token and renders as "line:col: message". Junk
/// input never aborts the process — it surfaces here.
///
//===----------------------------------------------------------------------===//

#ifndef GR_FRONTEND_DIAGNOSTICS_H
#define GR_FRONTEND_DIAGNOSTICS_H

#include <string>

namespace gr {

/// One frontend diagnostic. Line and Col are 1-based; Col 0 means the
/// position is unknown (e.g. a whole-program check).
struct FrontendDiag {
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Message;

  /// "line:col: message" — the canonical rendering, identical in shape
  /// to IRParseError::str().
  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col) + ": " + Message;
  }
};

} // namespace gr

#endif // GR_FRONTEND_DIAGNOSTICS_H
