//===- Parser.cpp ---------------------------------------------*- C++ -*-===//

#include "frontend/Parser.h"

using namespace gr;
using namespace gr::ast;

namespace {

/// Recursive descent parser over the token vector.
class Parser {
public:
  Parser(std::vector<Token> Tokens, std::string *Error)
      : Tokens(std::move(Tokens)), Error(Error) {}

  std::optional<TranslationUnit> run() {
    TranslationUnit TU;
    while (!at(TokenKind::End) && !Failed) {
      if (!parseTopLevel(TU))
        return std::nullopt;
    }
    if (Failed)
      return std::nullopt;
    return TU;
  }

private:
  //===--------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }
  Token advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }

  bool accept(TokenKind Kind) {
    if (!at(Kind))
      return false;
    advance();
    return true;
  }

  bool expect(TokenKind Kind) {
    if (accept(Kind))
      return true;
    fail("expected " + std::string(tokenKindName(Kind)) + " but found " +
         std::string(tokenKindName(peek().Kind)));
    return false;
  }

  void fail(const std::string &Msg) {
    if (!Failed && Error)
      *Error = "line " + std::to_string(peek().Line) + ": " + Msg;
    Failed = true;
  }

  //===--------------------------------------------------------------===//
  // Types and declarations
  //===--------------------------------------------------------------===//

  bool atTypeKeyword() const {
    return at(TokenKind::KwInt) || at(TokenKind::KwDouble) ||
           at(TokenKind::KwVoid);
  }

  /// Parses "int" / "double" / "void" plus '*' suffixes.
  std::optional<TypeSpec> parseTypePrefix() {
    TypeSpec TS;
    if (accept(TokenKind::KwInt))
      TS.BaseType = TypeSpec::Base::Int;
    else if (accept(TokenKind::KwDouble))
      TS.BaseType = TypeSpec::Base::Double;
    else if (accept(TokenKind::KwVoid))
      TS.BaseType = TypeSpec::Base::Void;
    else {
      fail("expected type name");
      return std::nullopt;
    }
    while (accept(TokenKind::Star))
      ++TS.PointerDepth;
    return TS;
  }

  /// Parses trailing "[N][M]..." dimensions into \p TS.
  bool parseDims(TypeSpec &TS) {
    while (accept(TokenKind::LBracket)) {
      if (at(TokenKind::IntLiteral)) {
        TS.Dims.push_back(advance().IntValue);
      } else {
        // "[]" only valid on parameters -> pointer decay.
        TS.Dims.push_back(-1);
      }
      if (!expect(TokenKind::RBracket))
        return false;
    }
    return true;
  }

  bool parseTopLevel(TranslationUnit &TU) {
    unsigned Line = peek().Line;
    auto TS = parseTypePrefix();
    if (!TS)
      return false;
    if (!at(TokenKind::Identifier)) {
      fail("expected identifier after type");
      return false;
    }
    std::string Name = advance().Text;

    if (at(TokenKind::LParen)) {
      // Function definition or declaration.
      FunctionDecl FD;
      FD.ReturnType = *TS;
      FD.Name = std::move(Name);
      FD.Line = Line;
      advance(); // '('
      if (!at(TokenKind::RParen)) {
        do {
          auto PT = parseTypePrefix();
          if (!PT)
            return false;
          if (!at(TokenKind::Identifier)) {
            fail("expected parameter name");
            return false;
          }
          ParamDecl PD;
          PD.Name = advance().Text;
          if (!parseDims(*PT))
            return false;
          // Array parameters decay to pointers.
          if (!PT->Dims.empty()) {
            PT->PointerDepth += 1;
            // Only the outermost dimension decays; inner constant
            // dimensions are not supported on parameters.
            if (PT->Dims.size() > 1) {
              fail("multi-dimensional array parameters are not supported");
              return false;
            }
            PT->Dims.clear();
          }
          PD.Type = *PT;
          FD.Params.push_back(std::move(PD));
        } while (accept(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen))
        return false;
      if (accept(TokenKind::Semicolon)) {
        TU.Functions.push_back(std::move(FD)); // Declaration only.
        return true;
      }
      auto Body = parseBlock();
      if (!Body)
        return false;
      FD.Body.reset(cast<BlockStmt>(Body.release()));
      TU.Functions.push_back(std::move(FD));
      return true;
    }

    // Global variable.
    GlobalDecl GD;
    GD.Type = *TS;
    GD.Name = std::move(Name);
    GD.Line = Line;
    if (!parseDims(GD.Type))
      return false;
    for (int64_t D : GD.Type.Dims)
      if (D <= 0) {
        fail("global array dimensions must be positive constants");
        return false;
      }
    if (!expect(TokenKind::Semicolon))
      return false;
    TU.Globals.push_back(std::move(GD));
    return true;
  }

  //===--------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------===//

  StmtPtr parseBlock() {
    unsigned Line = peek().Line;
    if (!expect(TokenKind::LBrace))
      return nullptr;
    std::vector<StmtPtr> Stmts;
    while (!at(TokenKind::RBrace) && !at(TokenKind::End) && !Failed) {
      StmtPtr S = parseStmt();
      if (!S)
        return nullptr;
      Stmts.push_back(std::move(S));
    }
    if (!expect(TokenKind::RBrace))
      return nullptr;
    auto Block = std::make_unique<BlockStmt>(std::move(Stmts));
    Block->Line = Line;
    return Block;
  }

  StmtPtr parseStmt() {
    unsigned Line = peek().Line;
    StmtPtr S = parseStmtInner();
    if (S)
      S->Line = Line;
    return S;
  }

  StmtPtr parseStmtInner() {
    if (at(TokenKind::LBrace))
      return parseBlock();
    if (atTypeKeyword())
      return parseDeclStmt(/*RequireSemicolon=*/true);
    if (accept(TokenKind::KwIf))
      return parseIf();
    if (accept(TokenKind::KwFor))
      return parseFor();
    if (accept(TokenKind::KwWhile))
      return parseWhile();
    if (accept(TokenKind::KwReturn)) {
      ExprPtr Value;
      if (!at(TokenKind::Semicolon)) {
        Value = parseExpr();
        if (!Value)
          return nullptr;
      }
      if (!expect(TokenKind::Semicolon))
        return nullptr;
      return std::make_unique<ReturnStmt>(std::move(Value));
    }
    if (accept(TokenKind::KwBreak)) {
      if (!expect(TokenKind::Semicolon))
        return nullptr;
      return std::make_unique<BreakStmt>();
    }
    if (accept(TokenKind::KwContinue)) {
      if (!expect(TokenKind::Semicolon))
        return nullptr;
      return std::make_unique<ContinueStmt>();
    }
    // Expression statement.
    ExprPtr E = parseExpr();
    if (!E || !expect(TokenKind::Semicolon))
      return nullptr;
    return std::make_unique<ExprStmt>(std::move(E));
  }

  StmtPtr parseDeclStmt(bool RequireSemicolon) {
    auto TS = parseTypePrefix();
    if (!TS)
      return nullptr;
    if (!at(TokenKind::Identifier)) {
      fail("expected variable name");
      return nullptr;
    }
    std::string Name = advance().Text;
    if (!parseDims(*TS))
      return nullptr;
    for (int64_t D : TS->Dims)
      if (D <= 0) {
        fail("local array dimensions must be positive constants");
        return nullptr;
      }
    ExprPtr Init;
    if (accept(TokenKind::Assign)) {
      Init = parseExpr();
      if (!Init)
        return nullptr;
    }
    if (RequireSemicolon && !expect(TokenKind::Semicolon))
      return nullptr;
    return std::make_unique<DeclStmt>(*TS, std::move(Name),
                                      std::move(Init));
  }

  StmtPtr parseIf() {
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen))
      return nullptr;
    StmtPtr Then = parseStmt();
    if (!Then)
      return nullptr;
    StmtPtr Else;
    if (accept(TokenKind::KwElse)) {
      Else = parseStmt();
      if (!Else)
        return nullptr;
    }
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else));
  }

  StmtPtr parseFor() {
    if (!expect(TokenKind::LParen))
      return nullptr;
    StmtPtr Init;
    if (!accept(TokenKind::Semicolon)) {
      if (atTypeKeyword()) {
        Init = parseDeclStmt(/*RequireSemicolon=*/true);
      } else {
        ExprPtr E = parseExpr();
        if (!E || !expect(TokenKind::Semicolon))
          return nullptr;
        Init = std::make_unique<ExprStmt>(std::move(E));
      }
      if (!Init)
        return nullptr;
    }
    ExprPtr Cond;
    if (!at(TokenKind::Semicolon)) {
      Cond = parseExpr();
      if (!Cond)
        return nullptr;
    }
    if (!expect(TokenKind::Semicolon))
      return nullptr;
    ExprPtr Step;
    if (!at(TokenKind::RParen)) {
      Step = parseExpr();
      if (!Step)
        return nullptr;
    }
    if (!expect(TokenKind::RParen))
      return nullptr;
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                     std::move(Step), std::move(Body));
  }

  StmtPtr parseWhile() {
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen))
      return nullptr;
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body));
  }

  //===--------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------===//

  ExprPtr withLine(ExprPtr E, unsigned Line) {
    if (E)
      E->Line = Line;
    return E;
  }

  ExprPtr parseExpr() { return parseAssignment(); }

  ExprPtr parseAssignment() {
    unsigned Line = peek().Line;
    ExprPtr LHS = parseTernary();
    if (!LHS)
      return nullptr;
    AssignExpr::Op Op;
    if (accept(TokenKind::Assign))
      Op = AssignExpr::Op::Assign;
    else if (accept(TokenKind::PlusAssign))
      Op = AssignExpr::Op::AddAssign;
    else if (accept(TokenKind::MinusAssign))
      Op = AssignExpr::Op::SubAssign;
    else if (accept(TokenKind::StarAssign))
      Op = AssignExpr::Op::MulAssign;
    else if (accept(TokenKind::SlashAssign))
      Op = AssignExpr::Op::DivAssign;
    else
      return LHS;
    ExprPtr RHS = parseAssignment();
    if (!RHS)
      return nullptr;
    return withLine(std::make_unique<AssignExpr>(Op, std::move(LHS),
                                                 std::move(RHS)),
                    Line);
  }

  ExprPtr parseTernary() {
    unsigned Line = peek().Line;
    ExprPtr Cond = parseLogicalOr();
    if (!Cond || !accept(TokenKind::Question))
      return Cond;
    ExprPtr TrueArm = parseExpr();
    if (!TrueArm || !expect(TokenKind::Colon))
      return nullptr;
    ExprPtr FalseArm = parseTernary();
    if (!FalseArm)
      return nullptr;
    return withLine(std::make_unique<TernaryExpr>(std::move(Cond),
                                                  std::move(TrueArm),
                                                  std::move(FalseArm)),
                    Line);
  }

  ExprPtr parseLogicalOr() {
    ExprPtr LHS = parseLogicalAnd();
    while (LHS && at(TokenKind::PipePipe)) {
      unsigned Line = advance().Line;
      ExprPtr RHS = parseLogicalAnd();
      if (!RHS)
        return nullptr;
      LHS = withLine(std::make_unique<BinaryExpr>(
                         BinaryExpr::Op::LogicalOr, std::move(LHS),
                         std::move(RHS)),
                     Line);
    }
    return LHS;
  }

  ExprPtr parseLogicalAnd() {
    ExprPtr LHS = parseEquality();
    while (LHS && at(TokenKind::AmpAmp)) {
      unsigned Line = advance().Line;
      ExprPtr RHS = parseEquality();
      if (!RHS)
        return nullptr;
      LHS = withLine(std::make_unique<BinaryExpr>(
                         BinaryExpr::Op::LogicalAnd, std::move(LHS),
                         std::move(RHS)),
                     Line);
    }
    return LHS;
  }

  ExprPtr parseEquality() {
    ExprPtr LHS = parseRelational();
    while (LHS &&
           (at(TokenKind::EqualEqual) || at(TokenKind::NotEqual))) {
      bool IsEq = at(TokenKind::EqualEqual);
      unsigned Line = advance().Line;
      ExprPtr RHS = parseRelational();
      if (!RHS)
        return nullptr;
      LHS = withLine(
          std::make_unique<BinaryExpr>(IsEq ? BinaryExpr::Op::Eq
                                            : BinaryExpr::Op::Ne,
                                       std::move(LHS), std::move(RHS)),
          Line);
    }
    return LHS;
  }

  ExprPtr parseRelational() {
    ExprPtr LHS = parseAdditive();
    while (LHS && (at(TokenKind::Less) || at(TokenKind::LessEqual) ||
                   at(TokenKind::Greater) || at(TokenKind::GreaterEqual))) {
      TokenKind K = peek().Kind;
      unsigned Line = advance().Line;
      BinaryExpr::Op Op = K == TokenKind::Less        ? BinaryExpr::Op::Lt
                          : K == TokenKind::LessEqual ? BinaryExpr::Op::Le
                          : K == TokenKind::Greater   ? BinaryExpr::Op::Gt
                                                      : BinaryExpr::Op::Ge;
      ExprPtr RHS = parseAdditive();
      if (!RHS)
        return nullptr;
      LHS = withLine(std::make_unique<BinaryExpr>(Op, std::move(LHS),
                                                  std::move(RHS)),
                     Line);
    }
    return LHS;
  }

  ExprPtr parseAdditive() {
    ExprPtr LHS = parseMultiplicative();
    while (LHS && (at(TokenKind::Plus) || at(TokenKind::Minus))) {
      bool IsAdd = at(TokenKind::Plus);
      unsigned Line = advance().Line;
      ExprPtr RHS = parseMultiplicative();
      if (!RHS)
        return nullptr;
      LHS = withLine(
          std::make_unique<BinaryExpr>(IsAdd ? BinaryExpr::Op::Add
                                             : BinaryExpr::Op::Sub,
                                       std::move(LHS), std::move(RHS)),
          Line);
    }
    return LHS;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr LHS = parseUnary();
    while (LHS && (at(TokenKind::Star) || at(TokenKind::Slash) ||
                   at(TokenKind::Percent))) {
      TokenKind K = peek().Kind;
      unsigned Line = advance().Line;
      BinaryExpr::Op Op = K == TokenKind::Star    ? BinaryExpr::Op::Mul
                          : K == TokenKind::Slash ? BinaryExpr::Op::Div
                                                  : BinaryExpr::Op::Rem;
      ExprPtr RHS = parseUnary();
      if (!RHS)
        return nullptr;
      LHS = withLine(std::make_unique<BinaryExpr>(Op, std::move(LHS),
                                                  std::move(RHS)),
                     Line);
    }
    return LHS;
  }

  ExprPtr parseUnary() {
    unsigned Line = peek().Line;
    if (accept(TokenKind::Minus)) {
      ExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      // Fold negated literals so "-1" is a constant, not 0-1; loop
      // steps and bounds must be compile-time constants to the IR.
      if (auto *IL = dyn_cast<IntLitExpr>(Sub.get())) {
        IL->Value = -IL->Value;
        return withLine(std::move(Sub), Line);
      }
      if (auto *FL = dyn_cast<FloatLitExpr>(Sub.get())) {
        FL->Value = -FL->Value;
        return withLine(std::move(Sub), Line);
      }
      return withLine(std::make_unique<UnaryExpr>(UnaryExpr::Op::Neg,
                                                  std::move(Sub)),
                      Line);
    }
    if (accept(TokenKind::Not)) {
      ExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return withLine(std::make_unique<UnaryExpr>(UnaryExpr::Op::Not,
                                                  std::move(Sub)),
                      Line);
    }
    if (accept(TokenKind::Plus)) {
      ExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return withLine(std::make_unique<UnaryExpr>(UnaryExpr::Op::Plus,
                                                  std::move(Sub)),
                      Line);
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    while (E && !Failed) {
      unsigned Line = peek().Line;
      if (accept(TokenKind::LBracket)) {
        ExprPtr Index = parseExpr();
        if (!Index || !expect(TokenKind::RBracket))
          return nullptr;
        E = withLine(std::make_unique<IndexExpr>(std::move(E),
                                                 std::move(Index)),
                     Line);
        continue;
      }
      if (accept(TokenKind::PlusPlus)) {
        E = withLine(std::make_unique<IncDecExpr>(std::move(E), true),
                     Line);
        continue;
      }
      if (accept(TokenKind::MinusMinus)) {
        E = withLine(std::make_unique<IncDecExpr>(std::move(E), false),
                     Line);
        continue;
      }
      break;
    }
    return E;
  }

  ExprPtr parsePrimary() {
    unsigned Line = peek().Line;
    if (at(TokenKind::IntLiteral))
      return withLine(std::make_unique<IntLitExpr>(advance().IntValue),
                      Line);
    if (at(TokenKind::FloatLiteral))
      return withLine(
          std::make_unique<FloatLitExpr>(advance().FloatValue), Line);
    if (at(TokenKind::Identifier)) {
      std::string Name = advance().Text;
      if (accept(TokenKind::LParen)) {
        std::vector<ExprPtr> Args;
        if (!at(TokenKind::RParen)) {
          do {
            ExprPtr Arg = parseExpr();
            if (!Arg)
              return nullptr;
            Args.push_back(std::move(Arg));
          } while (accept(TokenKind::Comma));
        }
        if (!expect(TokenKind::RParen))
          return nullptr;
        return withLine(std::make_unique<CallExpr>(std::move(Name),
                                                   std::move(Args)),
                        Line);
      }
      return withLine(std::make_unique<VarRefExpr>(std::move(Name)), Line);
    }
    if (accept(TokenKind::LParen)) {
      ExprPtr E = parseExpr();
      if (!E || !expect(TokenKind::RParen))
        return nullptr;
      return E;
    }
    fail("expected expression");
    return nullptr;
  }

  std::vector<Token> Tokens;
  std::string *Error;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

std::optional<TranslationUnit> gr::parseMiniC(std::string_view Source,
                                              std::string *Error) {
  std::string LexError;
  std::vector<Token> Tokens = lexSource(Source, &LexError);
  if (!LexError.empty()) {
    if (Error)
      *Error = LexError;
    return std::nullopt;
  }
  return Parser(std::move(Tokens), Error).run();
}
