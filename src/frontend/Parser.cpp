//===- Parser.cpp ---------------------------------------------*- C++ -*-===//

#include "frontend/Parser.h"

using namespace gr;
using namespace gr::ast;

namespace {

/// Recursive descent parser over the token vector.
class Parser {
public:
  Parser(std::vector<Token> Tokens, FrontendDiag *Diag)
      : Tokens(std::move(Tokens)), Diag(Diag) {}

  std::optional<TranslationUnit> run() {
    TranslationUnit TU;
    while (!at(TokenKind::End) && !Failed) {
      if (!parseTopLevel(TU))
        return std::nullopt;
    }
    if (Failed)
      return std::nullopt;
    return TU;
  }

private:
  //===--------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }
  Token advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }

  bool accept(TokenKind Kind) {
    if (!at(Kind))
      return false;
    advance();
    return true;
  }

  bool expect(TokenKind Kind) {
    if (accept(Kind))
      return true;
    fail("expected " + std::string(tokenKindName(Kind)) + " but found " +
         std::string(tokenKindName(peek().Kind)));
    return false;
  }

  void fail(const std::string &Msg) {
    if (!Failed && Diag)
      *Diag = {peek().Line, peek().Col, Msg};
    Failed = true;
  }

  //===--------------------------------------------------------------===//
  // Recursion guard
  //===--------------------------------------------------------------===//

  /// Nesting ceiling for statements and expressions together. The
  /// parser (and the lowering walk after it) recurses per nesting
  /// level, so pathological inputs — thousands of '(' or '{' — must
  /// fail with a diagnostic, not exhaust the native stack.
  static constexpr unsigned MaxNestingDepth = 200;

  struct DepthGuard {
    Parser &P;
    explicit DepthGuard(Parser &P) : P(P) { ++P.Depth; }
    ~DepthGuard() { --P.Depth; }
  };

  /// True (after recording the diagnostic) when the current nesting
  /// exceeds the ceiling.
  bool tooDeep() {
    if (Depth <= MaxNestingDepth)
      return false;
    fail("nesting too deep (limit " + std::to_string(MaxNestingDepth) +
         " levels)");
    return true;
  }

  //===--------------------------------------------------------------===//
  // Types and declarations
  //===--------------------------------------------------------------===//

  bool atTypeKeyword() const {
    return at(TokenKind::KwInt) || at(TokenKind::KwDouble) ||
           at(TokenKind::KwVoid) || at(TokenKind::KwStruct);
  }

  /// Parses "int" / "double" / "void" / "struct Tag" plus '*' suffixes.
  std::optional<TypeSpec> parseTypePrefix() {
    TypeSpec TS;
    if (accept(TokenKind::KwInt))
      TS.BaseType = TypeSpec::Base::Int;
    else if (accept(TokenKind::KwDouble))
      TS.BaseType = TypeSpec::Base::Double;
    else if (accept(TokenKind::KwVoid))
      TS.BaseType = TypeSpec::Base::Void;
    else if (accept(TokenKind::KwStruct)) {
      TS.BaseType = TypeSpec::Base::Struct;
      if (!at(TokenKind::Identifier)) {
        fail("expected struct tag after 'struct' but found " +
             std::string(tokenKindName(peek().Kind)));
        return std::nullopt;
      }
      TS.StructName = advance().Text;
    } else {
      fail("expected type name but found " +
           std::string(tokenKindName(peek().Kind)));
      return std::nullopt;
    }
    while (accept(TokenKind::Star))
      ++TS.PointerDepth;
    return TS;
  }

  /// Parses trailing "[N][M]..." dimensions into \p TS.
  bool parseDims(TypeSpec &TS) {
    while (accept(TokenKind::LBracket)) {
      if (at(TokenKind::IntLiteral)) {
        TS.Dims.push_back(advance().IntValue);
      } else {
        // "[]" only valid on parameters -> pointer decay.
        TS.Dims.push_back(-1);
      }
      if (!expect(TokenKind::RBracket))
        return false;
    }
    return true;
  }

  /// Parses `struct Tag { type name; ... };`. The leading 'struct' and
  /// tag are already consumed by the caller.
  bool parseStructDecl(TranslationUnit &TU, std::string Tag, unsigned Line,
                       unsigned Col) {
    StructDecl SD;
    SD.Name = std::move(Tag);
    SD.Line = Line;
    SD.Col = Col;
    if (!expect(TokenKind::LBrace))
      return false;
    while (!at(TokenKind::RBrace) && !at(TokenKind::End) && !Failed) {
      StructMember SM;
      SM.Line = peek().Line;
      SM.Col = peek().Col;
      auto MT = parseTypePrefix();
      if (!MT)
        return false;
      if (MT->isVoid() || (MT->BaseType == TypeSpec::Base::Struct &&
                           MT->PointerDepth == 0)) {
        fail("struct member must be a scalar or pointer type");
        return false;
      }
      if (!at(TokenKind::Identifier)) {
        fail("expected member name but found " +
             std::string(tokenKindName(peek().Kind)));
        return false;
      }
      SM.Name = advance().Text;
      if (at(TokenKind::LBracket)) {
        fail("array members are not supported; use an array of structs");
        return false;
      }
      SM.Type = *MT;
      if (!expect(TokenKind::Semicolon))
        return false;
      SD.Members.push_back(std::move(SM));
    }
    if (!expect(TokenKind::RBrace) || !expect(TokenKind::Semicolon))
      return false;
    if (SD.Members.empty()) {
      fail("struct '" + SD.Name + "' has no members");
      return false;
    }
    TU.Structs.push_back(std::move(SD));
    return true;
  }

  bool parseTopLevel(TranslationUnit &TU) {
    unsigned Line = peek().Line;
    unsigned Col = peek().Col;
    // `struct Tag {` opens a struct declaration; `struct Tag name`
    // continues as an ordinary global/function type prefix.
    if (at(TokenKind::KwStruct) && peek(1).Kind == TokenKind::Identifier &&
        peek(2).Kind == TokenKind::LBrace) {
      advance(); // 'struct'
      std::string Tag = advance().Text;
      return parseStructDecl(TU, std::move(Tag), Line, Col);
    }
    auto TS = parseTypePrefix();
    if (!TS)
      return false;
    if (!at(TokenKind::Identifier)) {
      fail("expected identifier after type but found " +
           std::string(tokenKindName(peek().Kind)));
      return false;
    }
    std::string Name = advance().Text;

    if (at(TokenKind::LParen)) {
      // Function definition or declaration.
      FunctionDecl FD;
      FD.ReturnType = *TS;
      FD.Name = std::move(Name);
      FD.Line = Line;
      FD.Col = Col;
      advance(); // '('
      if (!at(TokenKind::RParen)) {
        do {
          ParamDecl PD;
          PD.Line = peek().Line;
          PD.Col = peek().Col;
          auto PT = parseTypePrefix();
          if (!PT)
            return false;
          if (!at(TokenKind::Identifier)) {
            fail("expected parameter name but found " +
                 std::string(tokenKindName(peek().Kind)));
            return false;
          }
          PD.Name = advance().Text;
          if (!parseDims(*PT))
            return false;
          // Array parameters decay to pointers; so do bare struct
          // parameters (structs pass by reference).
          if (!PT->Dims.empty()) {
            PT->PointerDepth += 1;
            // Only the outermost dimension decays; inner constant
            // dimensions are not supported on parameters.
            if (PT->Dims.size() > 1) {
              fail("multi-dimensional array parameters are not supported");
              return false;
            }
            PT->Dims.clear();
          }
          if (PT->BaseType == TypeSpec::Base::Struct &&
              PT->PointerDepth == 0)
            PT->PointerDepth = 1;
          PD.Type = *PT;
          FD.Params.push_back(std::move(PD));
        } while (accept(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen))
        return false;
      if (accept(TokenKind::Semicolon)) {
        TU.Functions.push_back(std::move(FD)); // Declaration only.
        return true;
      }
      auto Body = parseBlock();
      if (!Body)
        return false;
      FD.Body.reset(cast<BlockStmt>(Body.release()));
      TU.Functions.push_back(std::move(FD));
      return true;
    }

    // Global variable.
    GlobalDecl GD;
    GD.Type = *TS;
    GD.Name = std::move(Name);
    GD.Line = Line;
    GD.Col = Col;
    if (!parseDims(GD.Type))
      return false;
    for (int64_t D : GD.Type.Dims)
      if (D <= 0) {
        fail("global array dimensions must be positive constants");
        return false;
      }
    if (!expect(TokenKind::Semicolon))
      return false;
    TU.Globals.push_back(std::move(GD));
    return true;
  }

  //===--------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------===//

  StmtPtr parseBlock() {
    unsigned Line = peek().Line;
    unsigned Col = peek().Col;
    if (!expect(TokenKind::LBrace))
      return nullptr;
    std::vector<StmtPtr> Stmts;
    while (!at(TokenKind::RBrace) && !at(TokenKind::End) && !Failed) {
      StmtPtr S = parseStmt();
      if (!S)
        return nullptr;
      Stmts.push_back(std::move(S));
    }
    if (!expect(TokenKind::RBrace))
      return nullptr;
    auto Block = std::make_unique<BlockStmt>(std::move(Stmts));
    Block->Line = Line;
    Block->Col = Col;
    return Block;
  }

  StmtPtr parseStmt() {
    DepthGuard Guard(*this);
    if (tooDeep())
      return nullptr;
    unsigned Line = peek().Line;
    unsigned Col = peek().Col;
    StmtPtr S = parseStmtInner();
    if (S) {
      S->Line = Line;
      S->Col = Col;
    }
    return S;
  }

  StmtPtr parseStmtInner() {
    if (at(TokenKind::LBrace))
      return parseBlock();
    if (atTypeKeyword())
      return parseDeclStmt(/*RequireSemicolon=*/true);
    if (accept(TokenKind::KwIf))
      return parseIf();
    if (accept(TokenKind::KwFor))
      return parseFor();
    if (accept(TokenKind::KwWhile))
      return parseWhile();
    if (accept(TokenKind::KwReturn)) {
      ExprPtr Value;
      if (!at(TokenKind::Semicolon)) {
        Value = parseExpr();
        if (!Value)
          return nullptr;
      }
      if (!expect(TokenKind::Semicolon))
        return nullptr;
      return std::make_unique<ReturnStmt>(std::move(Value));
    }
    if (accept(TokenKind::KwBreak)) {
      if (!expect(TokenKind::Semicolon))
        return nullptr;
      return std::make_unique<BreakStmt>();
    }
    if (accept(TokenKind::KwContinue)) {
      if (!expect(TokenKind::Semicolon))
        return nullptr;
      return std::make_unique<ContinueStmt>();
    }
    // Expression statement.
    ExprPtr E = parseExpr();
    if (!E || !expect(TokenKind::Semicolon))
      return nullptr;
    return std::make_unique<ExprStmt>(std::move(E));
  }

  StmtPtr parseDeclStmt(bool RequireSemicolon) {
    unsigned Line = peek().Line;
    unsigned Col = peek().Col;
    auto TS = parseTypePrefix();
    if (!TS)
      return nullptr;
    if (!at(TokenKind::Identifier)) {
      fail("expected variable name");
      return nullptr;
    }
    std::string Name = advance().Text;
    if (!parseDims(*TS))
      return nullptr;
    for (int64_t D : TS->Dims)
      if (D <= 0) {
        fail("local array dimensions must be positive constants");
        return nullptr;
      }
    ExprPtr Init;
    if (accept(TokenKind::Assign)) {
      Init = parseExpr();
      if (!Init)
        return nullptr;
    }
    if (RequireSemicolon && !expect(TokenKind::Semicolon))
      return nullptr;
    auto DS = std::make_unique<DeclStmt>(*TS, std::move(Name),
                                         std::move(Init));
    DS->Line = Line;
    DS->Col = Col;
    return DS;
  }

  StmtPtr parseIf() {
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen))
      return nullptr;
    StmtPtr Then = parseStmt();
    if (!Then)
      return nullptr;
    StmtPtr Else;
    if (accept(TokenKind::KwElse)) {
      Else = parseStmt();
      if (!Else)
        return nullptr;
    }
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else));
  }

  StmtPtr parseFor() {
    if (!expect(TokenKind::LParen))
      return nullptr;
    StmtPtr Init;
    if (!accept(TokenKind::Semicolon)) {
      if (atTypeKeyword()) {
        Init = parseDeclStmt(/*RequireSemicolon=*/true);
      } else {
        ExprPtr E = parseExpr();
        if (!E || !expect(TokenKind::Semicolon))
          return nullptr;
        Init = std::make_unique<ExprStmt>(std::move(E));
      }
      if (!Init)
        return nullptr;
    }
    ExprPtr Cond;
    if (!at(TokenKind::Semicolon)) {
      Cond = parseExpr();
      if (!Cond)
        return nullptr;
    }
    if (!expect(TokenKind::Semicolon))
      return nullptr;
    ExprPtr Step;
    if (!at(TokenKind::RParen)) {
      Step = parseExpr();
      if (!Step)
        return nullptr;
    }
    if (!expect(TokenKind::RParen))
      return nullptr;
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    return std::make_unique<ForStmt>(std::move(Init), std::move(Cond),
                                     std::move(Step), std::move(Body));
  }

  StmtPtr parseWhile() {
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen))
      return nullptr;
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body));
  }

  //===--------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------===//

  ExprPtr withPos(ExprPtr E, const Token &Tok) {
    if (E) {
      E->Line = Tok.Line;
      E->Col = Tok.Col;
    }
    return E;
  }

  ExprPtr parseExpr() { return parseAssignment(); }

  ExprPtr parseAssignment() {
    Token Start = peek();
    ExprPtr LHS = parseTernary();
    if (!LHS)
      return nullptr;
    AssignExpr::Op Op;
    if (accept(TokenKind::Assign))
      Op = AssignExpr::Op::Assign;
    else if (accept(TokenKind::PlusAssign))
      Op = AssignExpr::Op::AddAssign;
    else if (accept(TokenKind::MinusAssign))
      Op = AssignExpr::Op::SubAssign;
    else if (accept(TokenKind::StarAssign))
      Op = AssignExpr::Op::MulAssign;
    else if (accept(TokenKind::SlashAssign))
      Op = AssignExpr::Op::DivAssign;
    else
      return LHS;
    ExprPtr RHS = parseAssignment();
    if (!RHS)
      return nullptr;
    return withPos(std::make_unique<AssignExpr>(Op, std::move(LHS),
                                                std::move(RHS)),
                   Start);
  }

  ExprPtr parseTernary() {
    Token Start = peek();
    ExprPtr Cond = parseLogicalOr();
    if (!Cond || !accept(TokenKind::Question))
      return Cond;
    ExprPtr TrueArm = parseExpr();
    if (!TrueArm || !expect(TokenKind::Colon))
      return nullptr;
    ExprPtr FalseArm = parseTernary();
    if (!FalseArm)
      return nullptr;
    return withPos(std::make_unique<TernaryExpr>(std::move(Cond),
                                                 std::move(TrueArm),
                                                 std::move(FalseArm)),
                   Start);
  }

  ExprPtr parseLogicalOr() {
    ExprPtr LHS = parseLogicalAnd();
    while (LHS && at(TokenKind::PipePipe)) {
      Token OpTok = advance();
      ExprPtr RHS = parseLogicalAnd();
      if (!RHS)
        return nullptr;
      LHS = withPos(std::make_unique<BinaryExpr>(
                        BinaryExpr::Op::LogicalOr, std::move(LHS),
                        std::move(RHS)),
                    OpTok);
    }
    return LHS;
  }

  ExprPtr parseLogicalAnd() {
    ExprPtr LHS = parseEquality();
    while (LHS && at(TokenKind::AmpAmp)) {
      Token OpTok = advance();
      ExprPtr RHS = parseEquality();
      if (!RHS)
        return nullptr;
      LHS = withPos(std::make_unique<BinaryExpr>(
                        BinaryExpr::Op::LogicalAnd, std::move(LHS),
                        std::move(RHS)),
                    OpTok);
    }
    return LHS;
  }

  ExprPtr parseEquality() {
    ExprPtr LHS = parseRelational();
    while (LHS &&
           (at(TokenKind::EqualEqual) || at(TokenKind::NotEqual))) {
      bool IsEq = at(TokenKind::EqualEqual);
      Token OpTok = advance();
      ExprPtr RHS = parseRelational();
      if (!RHS)
        return nullptr;
      LHS = withPos(
          std::make_unique<BinaryExpr>(IsEq ? BinaryExpr::Op::Eq
                                            : BinaryExpr::Op::Ne,
                                       std::move(LHS), std::move(RHS)),
          OpTok);
    }
    return LHS;
  }

  ExprPtr parseRelational() {
    ExprPtr LHS = parseAdditive();
    while (LHS && (at(TokenKind::Less) || at(TokenKind::LessEqual) ||
                   at(TokenKind::Greater) || at(TokenKind::GreaterEqual))) {
      TokenKind K = peek().Kind;
      Token OpTok = advance();
      BinaryExpr::Op Op = K == TokenKind::Less        ? BinaryExpr::Op::Lt
                          : K == TokenKind::LessEqual ? BinaryExpr::Op::Le
                          : K == TokenKind::Greater   ? BinaryExpr::Op::Gt
                                                      : BinaryExpr::Op::Ge;
      ExprPtr RHS = parseAdditive();
      if (!RHS)
        return nullptr;
      LHS = withPos(std::make_unique<BinaryExpr>(Op, std::move(LHS),
                                                 std::move(RHS)),
                    OpTok);
    }
    return LHS;
  }

  ExprPtr parseAdditive() {
    ExprPtr LHS = parseMultiplicative();
    while (LHS && (at(TokenKind::Plus) || at(TokenKind::Minus))) {
      bool IsAdd = at(TokenKind::Plus);
      Token OpTok = advance();
      ExprPtr RHS = parseMultiplicative();
      if (!RHS)
        return nullptr;
      LHS = withPos(
          std::make_unique<BinaryExpr>(IsAdd ? BinaryExpr::Op::Add
                                             : BinaryExpr::Op::Sub,
                                       std::move(LHS), std::move(RHS)),
          OpTok);
    }
    return LHS;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr LHS = parseUnary();
    while (LHS && (at(TokenKind::Star) || at(TokenKind::Slash) ||
                   at(TokenKind::Percent))) {
      TokenKind K = peek().Kind;
      Token OpTok = advance();
      BinaryExpr::Op Op = K == TokenKind::Star    ? BinaryExpr::Op::Mul
                          : K == TokenKind::Slash ? BinaryExpr::Op::Div
                                                  : BinaryExpr::Op::Rem;
      ExprPtr RHS = parseUnary();
      if (!RHS)
        return nullptr;
      LHS = withPos(std::make_unique<BinaryExpr>(Op, std::move(LHS),
                                                 std::move(RHS)),
                    OpTok);
    }
    return LHS;
  }

  ExprPtr parseUnary() {
    // Every expression nesting level — parenthesised groups, unary
    // chains, subscripts, calls — passes through here, so one guard
    // bounds them all.
    DepthGuard Guard(*this);
    if (tooDeep())
      return nullptr;
    Token Start = peek();
    if (accept(TokenKind::Minus)) {
      ExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      // Fold negated literals so "-1" is a constant, not 0-1; loop
      // steps and bounds must be compile-time constants to the IR.
      if (auto *IL = dyn_cast<IntLitExpr>(Sub.get())) {
        IL->Value = -IL->Value;
        return withPos(std::move(Sub), Start);
      }
      if (auto *FL = dyn_cast<FloatLitExpr>(Sub.get())) {
        FL->Value = -FL->Value;
        return withPos(std::move(Sub), Start);
      }
      return withPos(std::make_unique<UnaryExpr>(UnaryExpr::Op::Neg,
                                                 std::move(Sub)),
                     Start);
    }
    if (accept(TokenKind::Not)) {
      ExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return withPos(std::make_unique<UnaryExpr>(UnaryExpr::Op::Not,
                                                 std::move(Sub)),
                     Start);
    }
    if (accept(TokenKind::Plus)) {
      ExprPtr Sub = parseUnary();
      if (!Sub)
        return nullptr;
      return withPos(std::make_unique<UnaryExpr>(UnaryExpr::Op::Plus,
                                                 std::move(Sub)),
                     Start);
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    while (E && !Failed) {
      Token Tok = peek();
      if (accept(TokenKind::LBracket)) {
        ExprPtr Index = parseExpr();
        if (!Index || !expect(TokenKind::RBracket))
          return nullptr;
        E = withPos(std::make_unique<IndexExpr>(std::move(E),
                                                std::move(Index)),
                    Tok);
        continue;
      }
      if (at(TokenKind::Dot) || at(TokenKind::Arrow)) {
        bool IsArrow = at(TokenKind::Arrow);
        advance();
        if (!at(TokenKind::Identifier)) {
          fail("expected member name after '" +
               std::string(IsArrow ? "->" : ".") + "' but found " +
               std::string(tokenKindName(peek().Kind)));
          return nullptr;
        }
        std::string Member = advance().Text;
        E = withPos(std::make_unique<MemberExpr>(std::move(E),
                                                 std::move(Member),
                                                 IsArrow),
                    Tok);
        continue;
      }
      if (accept(TokenKind::PlusPlus)) {
        E = withPos(std::make_unique<IncDecExpr>(std::move(E), true), Tok);
        continue;
      }
      if (accept(TokenKind::MinusMinus)) {
        E = withPos(std::make_unique<IncDecExpr>(std::move(E), false), Tok);
        continue;
      }
      break;
    }
    return E;
  }

  ExprPtr parsePrimary() {
    Token Start = peek();
    if (at(TokenKind::IntLiteral))
      return withPos(std::make_unique<IntLitExpr>(advance().IntValue),
                     Start);
    if (at(TokenKind::FloatLiteral))
      return withPos(
          std::make_unique<FloatLitExpr>(advance().FloatValue), Start);
    if (at(TokenKind::Identifier)) {
      std::string Name = advance().Text;
      if (accept(TokenKind::LParen)) {
        std::vector<ExprPtr> Args;
        if (!at(TokenKind::RParen)) {
          do {
            ExprPtr Arg = parseExpr();
            if (!Arg)
              return nullptr;
            Args.push_back(std::move(Arg));
          } while (accept(TokenKind::Comma));
        }
        if (!expect(TokenKind::RParen))
          return nullptr;
        return withPos(std::make_unique<CallExpr>(std::move(Name),
                                                  std::move(Args)),
                       Start);
      }
      return withPos(std::make_unique<VarRefExpr>(std::move(Name)), Start);
    }
    if (accept(TokenKind::LParen)) {
      ExprPtr E = parseExpr();
      if (!E || !expect(TokenKind::RParen))
        return nullptr;
      return E;
    }
    fail("expected expression but found " +
         std::string(tokenKindName(peek().Kind)));
    return nullptr;
  }

  std::vector<Token> Tokens;
  FrontendDiag *Diag;
  size_t Pos = 0;
  bool Failed = false;
  /// Current statement + expression nesting (see MaxNestingDepth).
  unsigned Depth = 0;
};

} // namespace

std::optional<TranslationUnit> gr::parseMiniC(std::string_view Source,
                                              FrontendDiag *Diag) {
  FrontendDiag LexDiag;
  std::vector<Token> Tokens = lexSource(Source, &LexDiag);
  if (!LexDiag.Message.empty()) {
    if (Diag)
      *Diag = LexDiag;
    return std::nullopt;
  }
  return Parser(std::move(Tokens), Diag).run();
}

std::optional<TranslationUnit> gr::parseMiniC(std::string_view Source,
                                              std::string *Error) {
  FrontendDiag Diag;
  auto TU = parseMiniC(Source, &Diag);
  if (!TU && Error)
    *Error = Diag.str();
  return TU;
}
