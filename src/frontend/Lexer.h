//===- Lexer.h - MiniC tokenizer ------------------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for MiniC, the C subset the benchmark corpus is written
/// in. Tracks line and column numbers for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef GR_FRONTEND_LEXER_H
#define GR_FRONTEND_LEXER_H

#include "frontend/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gr {

/// Token categories. Punctuation tokens are named after their glyphs.
enum class TokenKind {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwInt,
  KwDouble,
  KwVoid,
  KwStruct,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwReturn,
  KwBreak,
  KwContinue,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Question,
  Colon,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  NotEqual,
  AmpAmp,
  PipePipe,
  Not,
  Dot,
  Arrow,
};

/// One lexed token. Line and Col are 1-based source coordinates of the
/// token's first character.
struct Token {
  TokenKind Kind;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Lexes \p Source completely. On an invalid character, appends an
/// End token and records a positioned diagnostic in \p Diag.
std::vector<Token> lexSource(std::string_view Source, FrontendDiag *Diag);

/// Printable name of a token kind for diagnostics.
std::string_view tokenKindName(TokenKind Kind);

} // namespace gr

#endif // GR_FRONTEND_LEXER_H
