//===- Lexer.h - MiniC tokenizer ------------------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for MiniC, the C subset the benchmark corpus is written
/// in. Tracks line numbers for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef GR_FRONTEND_LEXER_H
#define GR_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gr {

/// Token categories. Punctuation tokens are named after their glyphs.
enum class TokenKind {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwInt,
  KwDouble,
  KwVoid,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwReturn,
  KwBreak,
  KwContinue,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Question,
  Colon,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  NotEqual,
  AmpAmp,
  PipePipe,
  Not,
};

/// One lexed token.
struct Token {
  TokenKind Kind;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  unsigned Line = 0;
};

/// Lexes \p Source completely. On an invalid character, appends an
/// End token and records an error message in \p Error.
std::vector<Token> lexSource(std::string_view Source, std::string *Error);

/// Printable name of a token kind for diagnostics.
std::string_view tokenKindName(TokenKind Kind);

} // namespace gr

#endif // GR_FRONTEND_LEXER_H
