//===- AST.h - MiniC abstract syntax --------------------------*- C++ -*-===//
///
/// \file
/// AST node classes for MiniC. Nodes use the same hand-rolled RTTI
/// scheme as the IR (classof + isa/dyn_cast).
///
//===----------------------------------------------------------------------===//

#ifndef GR_FRONTEND_AST_H
#define GR_FRONTEND_AST_H

#include "support/Casting.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gr {
namespace ast {

/// Source-level type: base type plus pointer depth plus array
/// dimensions (for declarations). A Struct base carries the struct
/// tag, resolved against the unit's struct declarations at codegen.
struct TypeSpec {
  enum class Base { Int, Double, Void, Struct };
  Base BaseType = Base::Int;
  std::string StructName; // Set when BaseType == Base::Struct.
  unsigned PointerDepth = 0;
  std::vector<int64_t> Dims; // Outermost first; empty for scalars.

  bool isVoid() const {
    return BaseType == Base::Void && PointerDepth == 0 && Dims.empty();
  }
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of expressions.
class Expr {
public:
  enum class ExprKind {
    IntLit,
    FloatLit,
    VarRef,
    Index,
    Call,
    Unary,
    Binary,
    Assign,
    IncDec,
    Ternary,
    Member,
  };

  virtual ~Expr() = default;
  ExprKind getKind() const { return Kind; }
  unsigned Line = 0;
  unsigned Col = 0;

protected:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}

private:
  ExprKind Kind;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  explicit IntLitExpr(int64_t V) : Expr(ExprKind::IntLit), Value(V) {}
  int64_t Value;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IntLit;
  }
};

class FloatLitExpr : public Expr {
public:
  explicit FloatLitExpr(double V) : Expr(ExprKind::FloatLit), Value(V) {}
  double Value;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::FloatLit;
  }
};

class VarRefExpr : public Expr {
public:
  explicit VarRefExpr(std::string Name)
      : Expr(ExprKind::VarRef), Name(std::move(Name)) {}
  std::string Name;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::VarRef;
  }
};

class IndexExpr : public Expr {
public:
  IndexExpr(ExprPtr Base, ExprPtr Index)
      : Expr(ExprKind::Index), Base(std::move(Base)),
        Index(std::move(Index)) {}
  ExprPtr Base;
  ExprPtr Index;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Index;
  }
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args)
      : Expr(ExprKind::Call), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Call;
  }
};

class UnaryExpr : public Expr {
public:
  enum class Op { Neg, Not, Plus };
  UnaryExpr(Op O, ExprPtr Sub)
      : Expr(ExprKind::Unary), Operator(O), Sub(std::move(Sub)) {}
  Op Operator;
  ExprPtr Sub;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Unary;
  }
};

class BinaryExpr : public Expr {
public:
  enum class Op {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogicalAnd,
    LogicalOr,
  };
  BinaryExpr(Op O, ExprPtr L, ExprPtr R)
      : Expr(ExprKind::Binary), Operator(O), LHS(std::move(L)),
        RHS(std::move(R)) {}
  Op Operator;
  ExprPtr LHS;
  ExprPtr RHS;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Binary;
  }
};

class AssignExpr : public Expr {
public:
  enum class Op { Assign, AddAssign, SubAssign, MulAssign, DivAssign };
  AssignExpr(Op O, ExprPtr L, ExprPtr R)
      : Expr(ExprKind::Assign), Operator(O), LHS(std::move(L)),
        RHS(std::move(R)) {}
  Op Operator;
  ExprPtr LHS;
  ExprPtr RHS;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Assign;
  }
};

class IncDecExpr : public Expr {
public:
  IncDecExpr(ExprPtr L, bool IsIncrement)
      : Expr(ExprKind::IncDec), LHS(std::move(L)),
        IsIncrement(IsIncrement) {}
  ExprPtr LHS;
  bool IsIncrement;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IncDec;
  }
};

/// Struct member access: `base.name` or `base->name`. The arrow form
/// dereferences a pointer-to-struct base (the only struct parameter
/// form MiniC has — structs pass by reference).
class MemberExpr : public Expr {
public:
  MemberExpr(ExprPtr Base, std::string Member, bool IsArrow)
      : Expr(ExprKind::Member), Base(std::move(Base)),
        Member(std::move(Member)), IsArrow(IsArrow) {}
  ExprPtr Base;
  std::string Member;
  bool IsArrow;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Member;
  }
};

class TernaryExpr : public Expr {
public:
  TernaryExpr(ExprPtr C, ExprPtr T, ExprPtr F)
      : Expr(ExprKind::Ternary), Cond(std::move(C)), TrueArm(std::move(T)),
        FalseArm(std::move(F)) {}
  ExprPtr Cond;
  ExprPtr TrueArm;
  ExprPtr FalseArm;
  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Ternary;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of statements.
class Stmt {
public:
  enum class StmtKind {
    Decl,
    Expr,
    If,
    For,
    While,
    Return,
    Break,
    Continue,
    Block,
  };

  virtual ~Stmt() = default;
  StmtKind getKind() const { return Kind; }
  unsigned Line = 0;
  unsigned Col = 0;

protected:
  explicit Stmt(StmtKind Kind) : Kind(Kind) {}

private:
  StmtKind Kind;
};

using StmtPtr = std::unique_ptr<Stmt>;

class DeclStmt : public Stmt {
public:
  DeclStmt(TypeSpec Type, std::string Name, ExprPtr Init)
      : Stmt(StmtKind::Decl), Type(Type), Name(std::move(Name)),
        Init(std::move(Init)) {}
  TypeSpec Type;
  std::string Name;
  ExprPtr Init; // May be null.
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Decl;
  }
};

class ExprStmt : public Stmt {
public:
  explicit ExprStmt(ExprPtr E)
      : Stmt(StmtKind::Expr), Expression(std::move(E)) {}
  ExprPtr Expression;
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Expr;
  }
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(StmtKind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; // May be null.
  static bool classof(const Stmt *S) { return S->getKind() == StmtKind::If; }
};

class ForStmt : public Stmt {
public:
  ForStmt(StmtPtr Init, ExprPtr Cond, ExprPtr Step, StmtPtr Body)
      : Stmt(StmtKind::For), Init(std::move(Init)), Cond(std::move(Cond)),
        Step(std::move(Step)), Body(std::move(Body)) {}
  StmtPtr Init; // May be null.
  ExprPtr Cond; // May be null (infinite loop).
  ExprPtr Step; // May be null.
  StmtPtr Body;
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::For;
  }
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body)
      : Stmt(StmtKind::While), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtPtr Body;
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::While;
  }
};

class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(ExprPtr V)
      : Stmt(StmtKind::Return), Value(std::move(V)) {}
  ExprPtr Value; // May be null.
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Return;
  }
};

class BreakStmt : public Stmt {
public:
  BreakStmt() : Stmt(StmtKind::Break) {}
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Break;
  }
};

class ContinueStmt : public Stmt {
public:
  ContinueStmt() : Stmt(StmtKind::Continue) {}
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Continue;
  }
};

class BlockStmt : public Stmt {
public:
  explicit BlockStmt(std::vector<StmtPtr> Stmts)
      : Stmt(StmtKind::Block), Stmts(std::move(Stmts)) {}
  std::vector<StmtPtr> Stmts;
  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Block;
  }
};

//===----------------------------------------------------------------------===//
// Top level
//===----------------------------------------------------------------------===//

/// One function parameter.
struct ParamDecl {
  TypeSpec Type;
  std::string Name;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Function definition (Body set) or declaration.
struct FunctionDecl {
  TypeSpec ReturnType;
  std::string Name;
  std::vector<ParamDecl> Params;
  std::unique_ptr<BlockStmt> Body; // Null for declarations.
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Module-level zero-initialized variable.
struct GlobalDecl {
  TypeSpec Type;
  std::string Name;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// One member of a struct declaration. Members are single-slot
/// (scalar or pointer) — arrays and nested structs are rejected.
struct StructMember {
  TypeSpec Type;
  std::string Name;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Top-level `struct Tag { ... };` declaration.
struct StructDecl {
  std::string Name;
  std::vector<StructMember> Members;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// A parsed translation unit.
struct TranslationUnit {
  std::vector<StructDecl> Structs;
  std::vector<GlobalDecl> Globals;
  std::vector<FunctionDecl> Functions;
};

} // namespace ast
} // namespace gr

#endif // GR_FRONTEND_AST_H
