//===- CodeGen.h - AST to IR lowering -------------------------*- C++ -*-===//
///
/// \file
/// Lowers a type-checked MiniC translation unit to IR. Locals become
/// entry-block allocas (mem2reg later promotes scalars to SSA values,
/// introducing the PHI nodes the paper's constraints match on);
/// functions get a single return block so post-dominance is clean.
///
//===----------------------------------------------------------------------===//

#ifndef GR_FRONTEND_CODEGEN_H
#define GR_FRONTEND_CODEGEN_H

#include "frontend/AST.h"
#include "frontend/Diagnostics.h"

#include <memory>
#include <string>

namespace gr {

class Module;

/// Lowers \p TU into a fresh module. Returns null and fills \p Diag on
/// a semantic error (unknown names, type mismatches, bad calls).
std::unique_ptr<Module> generateIR(const ast::TranslationUnit &TU,
                                   std::string ModuleName,
                                   FrontendDiag *Diag);

/// Convenience overload rendering the diagnostic into \p Error as
/// "line:col: message".
std::unique_ptr<Module> generateIR(const ast::TranslationUnit &TU,
                                   std::string ModuleName,
                                   std::string *Error);

} // namespace gr

#endif // GR_FRONTEND_CODEGEN_H
