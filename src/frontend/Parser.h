//===- Parser.h - MiniC recursive descent parser --------------*- C++ -*-===//
///
/// \file
/// Parses a token stream into an ast::TranslationUnit. Reports the
/// first error with its line number and stops.
///
//===----------------------------------------------------------------------===//

#ifndef GR_FRONTEND_PARSER_H
#define GR_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Lexer.h"

#include <optional>
#include <string>

namespace gr {

/// Parses \p Source; returns nullopt and sets \p Error on failure.
std::optional<ast::TranslationUnit> parseMiniC(std::string_view Source,
                                               std::string *Error);

} // namespace gr

#endif // GR_FRONTEND_PARSER_H
