//===- Parser.h - MiniC recursive descent parser --------------*- C++ -*-===//
///
/// \file
/// Parses a token stream into an ast::TranslationUnit. Reports the
/// first error as a structured FrontendDiag (line, column, expected
/// vs. got) and stops; junk input never aborts.
///
//===----------------------------------------------------------------------===//

#ifndef GR_FRONTEND_PARSER_H
#define GR_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Diagnostics.h"
#include "frontend/Lexer.h"

#include <optional>
#include <string>

namespace gr {

/// Parses \p Source; returns nullopt and fills \p Diag on failure.
std::optional<ast::TranslationUnit> parseMiniC(std::string_view Source,
                                               FrontendDiag *Diag);

/// Convenience overload rendering the diagnostic into \p Error as
/// "line:col: message".
std::optional<ast::TranslationUnit> parseMiniC(std::string_view Source,
                                               std::string *Error);

} // namespace gr

#endif // GR_FRONTEND_PARSER_H
