//===- Compiler.h - source-to-SSA pipeline --------------------*- C++ -*-===//
///
/// \file
/// The front-end driver: MiniC source -> AST -> IR with allocas ->
/// mem2reg -> DCE -> verified SSA module. Every consumer (detection,
/// baselines, interpreter, benches) starts from compileMiniC.
///
//===----------------------------------------------------------------------===//

#ifndef GR_FRONTEND_COMPILER_H
#define GR_FRONTEND_COMPILER_H

#include <memory>
#include <string>
#include <string_view>

namespace gr {

class Module;

/// Compiles \p Source to a verified SSA module. Returns null and sets
/// \p Error (with a line number) on lexer/parser/semantic/verifier
/// failures.
std::unique_ptr<Module> compileMiniC(std::string_view Source,
                                     std::string ModuleName,
                                     std::string *Error);

} // namespace gr

#endif // GR_FRONTEND_COMPILER_H
