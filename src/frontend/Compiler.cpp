//===- Compiler.cpp -------------------------------------------*- C++ -*-===//

#include "frontend/Compiler.h"

#include "frontend/CodeGen.h"
#include "frontend/Parser.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "pass/Pipeline.h"

using namespace gr;

std::unique_ptr<Module> gr::compileMiniC(std::string_view Source,
                                         std::string ModuleName,
                                         std::string *Error) {
  auto TU = parseMiniC(Source, Error);
  if (!TU)
    return nullptr;
  auto M = generateIR(*TU, std::move(ModuleName), Error);
  if (!M)
    return nullptr;

  std::vector<std::string> VerifyErrors;
  if (!verifyModule(*M, &VerifyErrors)) {
    if (Error)
      *Error = "pre-SSA verification failed: " +
               (VerifyErrors.empty() ? "unknown" : VerifyErrors.front());
    return nullptr;
  }

  FunctionAnalysisManager FAM;
  ModulePassManager MPM = buildSSAPipeline();
  MPM.run(*M, FAM);

  VerifyErrors.clear();
  if (!verifyModule(*M, &VerifyErrors)) {
    if (Error)
      *Error = "post-SSA verification failed: " +
               (VerifyErrors.empty() ? "unknown" : VerifyErrors.front());
    return nullptr;
  }
  return M;
}
