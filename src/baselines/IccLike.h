//===- IccLike.h - dependence-based auto-parallel baseline ----*- C++ -*-===//
///
/// \file
/// Models the Intel icc auto-parallelizer's reduction recognition as
/// observed in the paper: robust to runtime trip counts and general
/// code, but (a) scalar accumulators only -- no histograms; (b) gives
/// up when the accumulator's loop contains a nested loop (the SP
/// middle-of-the-nest miss); (c) gives up when the loop body calls
/// anything outside its vector-math whitelist -- fmin/fmax block
/// parallelization (the cutcp miss) while sqrt/log do not.
///
//===----------------------------------------------------------------------===//

#ifndef GR_BASELINES_ICCLIKE_H
#define GR_BASELINES_ICCLIKE_H

namespace gr {

class FunctionAnalysisManager;
class Module;

/// Number of parallelizable reductions icc would report for \p M,
/// consulting cached loop analyses from \p AM.
unsigned runIccBaseline(Module &M, FunctionAnalysisManager &AM);

/// Convenience overload with a scratch analysis manager.
unsigned runIccBaseline(Module &M);

} // namespace gr

#endif // GR_BASELINES_ICCLIKE_H
