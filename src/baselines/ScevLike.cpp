//===- ScevLike.cpp -------------------------------------------*- C++ -*-===//

#include "baselines/ScevLike.h"

#include "analysis/AffineForms.h"
#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "pass/Analyses.h"

using namespace gr;

namespace {

bool isStraightLineLoop(Loop *L) {
  if (!L->getCanonicalIterator() || !L->getLatch() || !L->getPreheader())
    return false;
  if (!L->subLoops().empty())
    return false;
  for (BasicBlock *BB : L->blocks()) {
    // The only conditional branch allowed is the header's exit test.
    auto *Br = dyn_cast_or_null<BranchInst>(BB->getTerminator());
    if (Br && Br->isConditional() && BB != L->getHeader())
      return false;
    for (Instruction *I : *BB)
      if (isa<CallInst>(I))
        return false;
  }
  return true;
}

/// A direct associative update whose other operand is an affine load
/// or invariant.
bool isScevReduction(PhiInst *Phi, Loop *L) {
  if (Phi == L->getCanonicalIterator() || Phi->getNumIncoming() != 2)
    return false;
  auto *Update =
      dyn_cast_or_null<BinaryInst>(Phi->getIncomingValueFor(L->getLatch()));
  if (!Update || !Update->isAssociative())
    return false;
  Value *Other;
  if (Update->getLHS() == Phi)
    Other = Update->getRHS();
  else if (Update->getRHS() == Phi)
    Other = Update->getLHS();
  else
    return false;
  if (L->isInvariant(Other))
    return true;
  if (auto *Load = dyn_cast<LoadInst>(Other)) {
    Value *Ptr = Load->getPointer();
    while (auto *GEP = dyn_cast<GEPInst>(Ptr)) {
      if (!isAffineInLoop(GEP->getIndex(), *L))
        return false;
      Ptr = GEP->getPointer();
    }
    return true;
  }
  return false;
}

} // namespace

unsigned gr::runScevBaseline(Module &M, FunctionAnalysisManager &AM) {
  unsigned Count = 0;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    const LoopInfo &LI = AM.get<LoopAnalysis>(*F);
    for (const auto &L : LI.loops()) {
      if (!isStraightLineLoop(L.get()))
        continue;
      for (PhiInst *Phi : L->getHeader()->phis())
        if (isScevReduction(Phi, L.get()))
          ++Count;
    }
  }
  return Count;
}

unsigned gr::runScevBaseline(Module &M) {
  FunctionAnalysisManager AM;
  return runScevBaseline(M, AM);
}
