//===- PollyLike.cpp ------------------------------------------*- C++ -*-===//

#include "baselines/PollyLike.h"

#include "analysis/LoopInfo.h"
#include "analysis/SCoPInfo.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "pass/Analyses.h"

using namespace gr;

namespace {

/// Counts associative header-phi accumulators in the nest rooted at
/// \p Root (each is one reduction Polly's extension can schedule).
unsigned countNestReductions(Loop *Root, const LoopInfo &LI) {
  unsigned Count = 0;
  for (const auto &L : LI.loops()) {
    if (L.get() != Root && !Root->contains(L.get()))
      continue;
    if (!L->getLatch() || !L->getPreheader())
      continue;
    for (PhiInst *Phi : L->getHeader()->phis()) {
      if (Phi == L->getCanonicalIterator() || Phi->getNumIncoming() != 2)
        continue;
      auto *Update = dyn_cast_or_null<BinaryInst>(
          Phi->getIncomingValueFor(L->getLatch()));
      if (Update && Update->isAssociative() &&
          (Update->getLHS() == Phi || Update->getRHS() == Phi))
        ++Count;
    }
  }
  return Count;
}

} // namespace

PollyResult gr::runPollyBaseline(Module &M, FunctionAnalysisManager &AM) {
  PollyResult Result;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    const LoopInfo &LI = AM.get<LoopAnalysis>(*F);
    for (const SCoP &S : AM.get<SCoPAnalysis>(*F)) {
      ++Result.NumSCoPs;
      if (S.HasReduction) {
        ++Result.NumReductionSCoPs;
        Result.NumReductions += countNestReductions(S.Root, LI);
      }
    }
  }
  return Result;
}

PollyResult gr::runPollyBaseline(Module &M) {
  FunctionAnalysisManager AM;
  return runPollyBaseline(M, AM);
}
