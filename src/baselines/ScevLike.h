//===- ScevLike.h - scalar-evolution-style baseline -----------*- C++ -*-===//
///
/// \file
/// Models detection by LLVM's scalar evolution as discussed in §6.1:
/// fundamentally limited to straight-line scalar reductions -- no
/// control flow in the body, no calls, no histograms.
///
//===----------------------------------------------------------------------===//

#ifndef GR_BASELINES_SCEVLIKE_H
#define GR_BASELINES_SCEVLIKE_H

namespace gr {

class FunctionAnalysisManager;
class Module;

/// Number of straight-line scalar reductions scalar evolution can
/// describe in \p M, consulting cached loop analyses from \p AM.
unsigned runScevBaseline(Module &M, FunctionAnalysisManager &AM);

/// Convenience overload with a scratch analysis manager.
unsigned runScevBaseline(Module &M);

} // namespace gr

#endif // GR_BASELINES_SCEVLIKE_H
