//===- ScevLike.h - scalar-evolution-style baseline -----------*- C++ -*-===//
///
/// \file
/// Models detection by LLVM's scalar evolution as discussed in §6.1:
/// fundamentally limited to straight-line scalar reductions -- no
/// control flow in the body, no calls, no histograms.
///
//===----------------------------------------------------------------------===//

#ifndef GR_BASELINES_SCEVLIKE_H
#define GR_BASELINES_SCEVLIKE_H

namespace gr {

class Module;

/// Number of straight-line scalar reductions scalar evolution can
/// describe in \p M.
unsigned runScevBaseline(Module &M);

} // namespace gr

#endif // GR_BASELINES_SCEVLIKE_H
