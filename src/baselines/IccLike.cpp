//===- IccLike.cpp --------------------------------------------*- C++ -*-===//

#include "baselines/IccLike.h"

#include "analysis/AffineForms.h"
#include "analysis/LoopInfo.h"
#include "idioms/Associativity.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "pass/Analyses.h"

#include <set>
#include <string>
#include <vector>

using namespace gr;

namespace {

/// Vectorizer-friendly math calls icc parallelizes through. fmin/fmax
/// are deliberately absent (see the paper's cutcp discussion).
bool isWhitelistedCall(const CallInst *Call) {
  static const char *Whitelist[] = {"sqrt", "log", "exp",   "sin",
                                    "cos",  "pow", "floor", "fabs"};
  const std::string &Name = Call->getCallee()->getName();
  for (const char *W : Whitelist)
    if (Name == W)
      return true;
  return false;
}

/// Does the in-loop backward slice of \p V reach a header phi other
/// than the induction variable? (That would mean a cross-iteration
/// value escapes into memory or control.)
bool sliceTouchesAccumulator(Value *V, Loop *L) {
  std::set<Value *> Visited;
  std::vector<Value *> Worklist{V};
  while (!Worklist.empty()) {
    Value *Current = Worklist.back();
    Worklist.pop_back();
    if (!Visited.insert(Current).second)
      continue;
    auto *I = dyn_cast<Instruction>(Current);
    if (!I || !L->contains(I->getParent()))
      continue;
    if (auto *Phi = dyn_cast<PhiInst>(I))
      if (Phi->getParent() == L->getHeader() &&
          Phi != L->getCanonicalIterator())
        return true;
    for (Value *Op : I->operands())
      if (!isa<BasicBlock>(Op))
        Worklist.push_back(Op);
  }
  return false;
}

/// Every GEP subscript on the pointer affine in \p L, base statically
/// known.
bool affineAddress(Value *Ptr, Loop *L) {
  while (auto *GEP = dyn_cast<GEPInst>(Ptr)) {
    if (!isAffineInLoop(GEP->getIndex(), *L))
      return false;
    Ptr = GEP->getPointer();
  }
  return isa<GlobalVariable>(Ptr) || isa<Argument>(Ptr) ||
         isa<AllocaInst>(Ptr) ||
         (isa<Instruction>(Ptr) &&
          !L->contains(cast<Instruction>(Ptr)->getParent()));
}

/// Loop-level legality for icc's auto-parallelizer.
bool loopParallelizable(Loop *L) {
  if (!L->getCanonicalIterator() || !L->getLatch() || !L->getPreheader())
    return false;
  // Gives up on reductions buried in loop nests (the SP miss).
  if (!L->subLoops().empty())
    return false;
  for (BasicBlock *BB : L->blocks()) {
    for (Instruction *I : *BB) {
      if (auto *Call = dyn_cast<CallInst>(I)) {
        if (!isWhitelistedCall(Call))
          return false;
        continue;
      }
      if (auto *Store = dyn_cast<StoreInst>(I)) {
        // Histograms: indirect writes defeat the dependence test.
        if (!affineAddress(Store->getPointer(), L))
          return false;
        // Writing accumulator-derived values exposes partial results.
        if (sliceTouchesAccumulator(Store->getStoredValue(), L))
          return false;
        continue;
      }
    }
  }
  return true;
}

unsigned countLoopReductions(Loop *L) {
  unsigned Count = 0;
  for (PhiInst *Phi : L->getHeader()->phis()) {
    if (Phi == L->getCanonicalIterator() || Phi->getNumIncoming() != 2)
      continue;
    Value *Update = Phi->getIncomingValueFor(L->getLatch());
    if (!Update)
      continue;
    if (classifyUpdate(Update, Phi) != ReductionOperator::Unknown)
      ++Count;
  }
  return Count;
}

} // namespace

unsigned gr::runIccBaseline(Module &M, FunctionAnalysisManager &AM) {
  unsigned Count = 0;
  for (const auto &F : M.functions()) {
    if (F->isDeclaration())
      continue;
    const LoopInfo &LI = AM.get<LoopAnalysis>(*F);
    for (const auto &L : LI.loops())
      if (loopParallelizable(L.get()))
        Count += countLoopReductions(L.get());
  }
  return Count;
}

unsigned gr::runIccBaseline(Module &M) {
  FunctionAnalysisManager AM;
  return runIccBaseline(M, AM);
}
