//===- PollyLike.h - polyhedral reduction baseline ------------*- C++ -*-===//
///
/// \file
/// Models Polly+Reduction [Doerfert et al.]: reductions are only found
/// inside SCoPs (static control parts), so anything with runtime
/// bounds loaded from memory, non-affine subscripts, calls or
/// data-dependent control flow is out of reach. Provides both the
/// SCoP counts (Fig 9/10/11) and the reduction counts (Fig 8).
///
//===----------------------------------------------------------------------===//

#ifndef GR_BASELINES_POLLYLIKE_H
#define GR_BASELINES_POLLYLIKE_H

namespace gr {

class FunctionAnalysisManager;
class Module;

/// Result of the Polly-style analysis over one module.
struct PollyResult {
  unsigned NumSCoPs = 0;
  unsigned NumReductionSCoPs = 0;
  /// Scalar reductions contained in SCoPs (what Fig 8 plots as
  /// "Polly+reductions"). Histograms are never found: indirect
  /// subscripts contradict the affine access condition.
  unsigned NumReductions = 0;
};

/// Runs SCoP detection + in-SCoP reduction matching over \p M,
/// consulting cached loop/SCoP analyses from \p AM.
PollyResult runPollyBaseline(Module &M, FunctionAnalysisManager &AM);

/// Convenience overload with a scratch analysis manager.
PollyResult runPollyBaseline(Module &M);

} // namespace gr

#endif // GR_BASELINES_POLLYLIKE_H
