//===- DetectionCache.h - content-addressed detection cache ---*- C++ -*-===//
///
/// \file
/// Detection is a pure function of (IR content, idiom registry, solver
/// kind): the bitwise print→parse fixed point of the `.gr` printer
/// makes a function's canonical text a content key, so repeated
/// traffic over mostly-unchanged code can skip the constraint solver
/// entirely. This cache memoizes detection at two granularities:
///
///  * **Function tier** — consulted inside detectIdioms() (and,
///    pre-sharding, by the parallel driver so worker lanes only carry
///    misses). Key: hash of the function's canonical printed text, a
///    module *environment hash* (the one cross-function input —
///    detection consults the whole-module purity classification and
///    callee/global identities, so the key covers every function's
///    name/arity/purity kind and every global's name/type), the
///    registry fingerprint, the resolved solver kind, and the schema
///    version. Value: the pre-decode IdiomDetectionResult plus this
///    function's DetectionStats delta, with IR pointers encoded as
///    indices into Function::allValues() (a deterministic, purely
///    text-determined enumeration) or operand positions — entries
///    therefore rebind into *any* function with identical text, in
///    any module instance, including freshly parsed ones.
///
///  * **Module tier** — consulted by the batch/serving layer
///    (pass/BatchDriver.h) on the raw request text *before* parsing.
///    Key: hash of the exact input bytes + fingerprint + kind. Value:
///    the aggregate counts and DetectionStats. A warm hit skips parse
///    and solve; this is what makes byte-identical repeat requests
///    (the dominant production pattern) nearly free.
///
/// Storage is an LRU-bounded in-memory tier over an optional on-disk
/// tier (GR_CACHE_DIR): one file per key, written atomically via
/// write-to-temp + rename, loaded tolerantly — a torn, truncated or
/// garbage entry is a miss, never an error. Stats restored from cache
/// are bitwise identical to a cold solve: SolverStats counters are
/// commutative sums and the per-idiom map is name-keyed, so merging
/// cached deltas in any order reproduces the cold totals exactly
/// (asserted by tests/CacheTests.cpp and bench/table_cache_sweep).
///
/// Invalidation is purely key-derivation: there is no explicit
/// invalidate call. Any edit that changes a function's canonical text,
/// any purity-class/signature change elsewhere in its module, any
/// registry change (fingerprint hashes every spec's formula atoms and
/// metadata) and any solver-kind switch derive a different key; stale
/// entries are simply never addressed again and age out of the LRU /
/// stay inert on disk. See docs/CACHING.md for the full contract.
///
/// Thread-safety: lookups/stores take one internal mutex for the
/// memory tier; disk I/O happens outside it. Counters are atomics.
/// Concurrent detection lanes share the active() instance freely.
///
//===----------------------------------------------------------------------===//

#ifndef GR_CACHE_DETECTIONCACHE_H
#define GR_CACHE_DETECTIONCACHE_H

#include "cache/ContentHash.h"
#include "idioms/ReductionAnalysis.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace gr {

class Function;
class Module;
struct IdiomDetectionResult;

/// Monotonic hit/miss/eviction counters (process-wide per cache
/// instance; snapshot with DetectionCache::counters()).
struct CacheCounters {
  uint64_t FunctionHits = 0;
  uint64_t FunctionMisses = 0;
  uint64_t FunctionStores = 0;
  uint64_t ModuleHits = 0;
  uint64_t ModuleMisses = 0;
  uint64_t ModuleStores = 0;
  /// Hits served by re-reading the on-disk tier (subset of the hit
  /// counters above; memory-tier hits are the rest).
  uint64_t DiskHits = 0;
  /// On-disk entries that failed to materialize (torn/garbage/stale
  /// schema) and were treated as misses.
  uint64_t CorruptEntries = 0;
  /// Memory-tier entries dropped by the LRU bound.
  uint64_t Evictions = 0;
  /// Disk-tier publishes that ultimately failed (short write, ENOSPC,
  /// injected cache_write/cache_rename faults) after the bounded
  /// retry. Non-fatal: the entry is still served from the memory tier.
  uint64_t DiskWriteFailures = 0;

  uint64_t hits() const { return FunctionHits + ModuleHits; }
  uint64_t misses() const { return FunctionMisses + ModuleMisses; }
};

/// Module-tier payload: what the batch driver needs to answer a
/// byte-identical request without parsing it.
struct CachedModuleSummary {
  unsigned Functions = 0;
  ReductionCounts Counts;
  DetectionStats Stats;
};

/// A function-tier key, kept as a pair so the content hash can be
/// verified against the entry payload (guards 64-bit combined-key
/// collisions mapping different content onto one file).
struct FunctionCacheKey {
  uint64_t Combined = 0;
  uint64_t Content = 0;
};

/// A module-tier key (same shape; Content hashes the raw text).
struct ModuleCacheKey {
  uint64_t Combined = 0;
  uint64_t Content = 0;
};

class DetectionCache {
public:
  struct Config {
    /// On-disk tier root; empty = memory-only. Created on first store
    /// if missing.
    std::string Dir;
    /// LRU bound of the memory tier (entries across both tiers' keys).
    std::size_t MaxMemoryEntries = 65536;
  };

  explicit DetectionCache(Config C);

  //===--------------------------------------------------------------===//
  // Key derivation
  //===--------------------------------------------------------------===//

  /// Hash of \p F's canonical printed text (the src/ir printer is the
  /// keyer; whitespace-identical reprints hash identically by the
  /// round-trip fixed point).
  static uint64_t functionContentHash(const Function &F);

  /// The cross-function inputs of per-function detection: every
  /// function's (name, arity, declaration-ness, purity kind) and every
  /// global's (name, contained type). Purity-class-preserving edits to
  /// *other* functions keep a function's entries valid; a
  /// purity-changing edit re-keys the whole module — exactly the
  /// soundness boundary of the whole-module PurityAnalysis.
  static uint64_t environmentHash(Module &M, FunctionAnalysisManager &AM);

  FunctionCacheKey functionKey(Function &F, FunctionAnalysisManager &AM,
                               const IdiomRegistry &Registry,
                               SolverKind Kind) const;
  /// \p SourceTag distinguishes input languages sharing the byte
  /// space (0 = textual IR, 'c' = MiniC source): the same bytes mean
  /// different modules under different frontends.
  ModuleCacheKey moduleKey(const std::string &Text,
                           const IdiomRegistry &Registry,
                           SolverKind Kind, uint64_t SourceTag = 0) const;

  //===--------------------------------------------------------------===//
  // Function tier
  //===--------------------------------------------------------------===//

  /// Looks up \p K and, on a hit, rebinds the stored result into \p F
  /// (which must have the canonical text the key was derived from) and
  /// adds the stored per-function stats delta into \p StatsOut.
  /// \p CountMiss=false makes a failed probe not count as a miss — the
  /// parallel driver's pre-pass probes every function and lets the
  /// worker-lane lookup record the one real miss, so Misses equals
  /// actual solver invocations.
  bool lookupFunction(const FunctionCacheKey &K, Function &F,
                      IdiomDetectionResult &Out, DetectionStats &StatsOut,
                      bool CountMiss = true);

  /// Serializes and stores \p R / \p Stats under \p K. A result whose
  /// values cannot be stably encoded (not reachable from \p F) is
  /// silently not stored — never a wrong entry, just a future miss.
  void storeFunction(const FunctionCacheKey &K, const Function &F,
                     const IdiomDetectionResult &R,
                     const DetectionStats &Stats);

  //===--------------------------------------------------------------===//
  // Module tier (batch/serving layer)
  //===--------------------------------------------------------------===//

  bool lookupModule(const ModuleCacheKey &K, CachedModuleSummary &Out);
  void storeModule(const ModuleCacheKey &K, const CachedModuleSummary &S);

  //===--------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------===//

  CacheCounters counters() const;
  void resetCounters();
  const std::string &dir() const { return Cfg.Dir; }
  /// On-disk path an entry with combined key \p Combined persists to
  /// (exposed for the corruption tests).
  std::string entryPath(uint64_t Combined) const;

  //===--------------------------------------------------------------===//
  // Process-wide instance
  //===--------------------------------------------------------------===//

  /// The active cache, or null when caching is off. Resolved once from
  /// the environment on first use: GR_CACHE_DIR=<dir> enables the
  /// memory+disk tiers, GR_CACHE=mem enables memory-only, GR_CACHE=off
  /// (or neither variable) disables. configure()/disable() override.
  static DetectionCache *active();

  /// Installs a new active cache (tools' --cache flag, tests).
  static void configure(Config C);

  /// Turns caching off (until the next configure()).
  static void disable();

  /// Re-resolves the environment as if the process had just started
  /// (test isolation: fixtures that configure() restore the ambient
  /// GR_CACHE_DIR-driven state with this).
  static void configureFromEnvironment();

private:
  struct Entry {
    std::shared_ptr<const std::string> Text;
    std::list<uint64_t>::iterator LruIt;
  };

  /// Memory tier: returns the payload or null. Promotes on hit.
  std::shared_ptr<const std::string> memoryGet(uint64_t Key);
  void memoryPut(uint64_t Key, std::shared_ptr<const std::string> Text);
  /// Disk tier: whole-file read; empty optional when absent/unreadable.
  bool diskGet(uint64_t Key, std::string &Out) const;
  void diskPut(uint64_t Key, const std::string &Text) const;

  /// Shared lookup body over both tiers; returns the payload text or
  /// null. Sets \p FromDisk when the memory tier missed.
  std::shared_ptr<const std::string> fetch(uint64_t Key, bool &FromDisk);

  /// Drops a corrupt entry from both tiers (memory eviction + on-disk
  /// unlink), so corruption is counted exactly once per entry and the
  /// next store replaces it cleanly.
  void evictCorrupt(uint64_t Key);

  Config Cfg;

  mutable std::mutex MemMutex;
  std::unordered_map<uint64_t, Entry> Memory;
  std::list<uint64_t> Lru; ///< Front = most recently used.

  mutable std::atomic<uint64_t> FunctionHits{0};
  mutable std::atomic<uint64_t> FunctionMisses{0};
  mutable std::atomic<uint64_t> FunctionStores{0};
  mutable std::atomic<uint64_t> ModuleHits{0};
  mutable std::atomic<uint64_t> ModuleMisses{0};
  mutable std::atomic<uint64_t> ModuleStores{0};
  mutable std::atomic<uint64_t> DiskHits{0};
  mutable std::atomic<uint64_t> CorruptEntries{0};
  mutable std::atomic<uint64_t> Evictions{0};
  mutable std::atomic<uint64_t> DiskWriteFailures{0};
};

//===----------------------------------------------------------------===//
// Serialization (exposed for the cache test battery)
//===----------------------------------------------------------------===//

/// Renders a function-tier entry. Returns the empty string when some
/// result value has no stable encoding relative to \p F (the caller
/// must then skip the store).
std::string serializeFunctionEntry(const Function &F, uint64_t ContentHash,
                                   const IdiomDetectionResult &R,
                                   const DetectionStats &Stats);

/// Rebinds a serialized entry into \p F. Any structural problem —
/// truncation, bad token, index out of range, kind mismatch, content
/// hash != \p ContentHash — returns false with outputs untouched.
bool materializeFunctionEntry(const std::string &Text, Function &F,
                              uint64_t ContentHash, IdiomDetectionResult &Out,
                              DetectionStats &StatsOut);

std::string serializeModuleEntry(uint64_t ContentHash,
                                 const CachedModuleSummary &S);
bool materializeModuleEntry(const std::string &Text, uint64_t ContentHash,
                            CachedModuleSummary &Out);

} // namespace gr

#endif // GR_CACHE_DETECTIONCACHE_H
