//===- ContentHash.cpp ----------------------------------------*- C++ -*-===//

#include "cache/ContentHash.h"

using namespace gr;

uint64_t gr::hashBytes(std::string_view S) {
  return ContentHasher().bytes(S.data(), S.size()).value();
}

std::string gr::hashToHex(uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[static_cast<std::size_t>(I)] = Digits[V & 0xF];
    V >>= 4;
  }
  return Out;
}

bool gr::parseHexHash(std::string_view Text, uint64_t &Out) {
  if (Text.size() != 16)
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = static_cast<unsigned>(C - '0');
    else if (C >= 'a' && C <= 'f')
      Digit = static_cast<unsigned>(C - 'a') + 10;
    else
      return false;
    V = (V << 4) | Digit;
  }
  Out = V;
  return true;
}
