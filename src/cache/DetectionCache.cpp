//===- DetectionCache.cpp -------------------------------------*- C++ -*-===//

#include "cache/DetectionCache.h"

#include "idioms/IdiomRegistry.h"
#include "idioms/IdiomSpec.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "pass/Analyses.h"
#include "support/FaultInjection.h"
#include "support/OStream.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <sys/stat.h>
#include <unistd.h>

using namespace gr;

//===----------------------------------------------------------------===//
// Entry text format
//===----------------------------------------------------------------===//
//
// Line-oriented, versioned, explicitly terminated:
//
//   GRDC1 f <content-hash-hex>
//   forloops <nodes> <candidates> <solutions>
//   idioms <N>
//   i <name> <nodes> <candidates> <solutions>     (xN, stats map order)
//   loops <N>
//   l <11 value refs>                             (xN)
//   insts <N>
//   b <idiom> <op> <11 value refs> <ncaps>        (xN, followed by caps)
//   c <name> <ref>                                (xncaps)
//   end GRDC1
//
// Module-tier entries swap the body for `functions/counts/forloops/
// idioms` lines. Any deviation — short file, bad token, wrong count,
// missing trailer — makes materialization return false, which the
// cache treats as a miss (CorruptEntries counter). Values are encoded
// relative to the target function:
//
//   n        null
//   v<i>     Function::allValues()[i]      (args, blocks, instructions)
//   o<i>.<j> operand j of allValues()[i]   (constants, globals, callees)
//
// allValues() enumerates in deterministic layout order, fully
// determined by the function's canonical text — so an entry stored
// against one Function instance rebinds into any other instance with
// identical text (e.g. a freshly parsed copy in another module).

namespace {

constexpr uint64_t kSchemaVersion = 1;
constexpr const char *kMagic = "GRDC1";
constexpr const char *kTrailer = "end GRDC1";

bool parseU64(const std::string &T, uint64_t &V) {
  if (T.empty() || T.size() > 20)
    return false;
  V = 0;
  for (char C : T) {
    if (C < '0' || C > '9')
      return false;
    uint64_t Next = V * 10 + static_cast<uint64_t>(C - '0');
    if (Next < V)
      return false;
    V = Next;
  }
  return true;
}

/// Space/percent-safe token encoding for idiom/capture names. The
/// empty string becomes "%-" (never produced by a hex escape).
std::string escapeToken(const std::string &S) {
  if (S.empty())
    return "%-";
  static const char Digits[] = "0123456789abcdef";
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    if (C <= ' ' || C == '%' || C >= 0x7f) {
      Out += '%';
      Out += Digits[C >> 4];
      Out += Digits[C & 0xF];
    } else {
      Out += static_cast<char>(C);
    }
  }
  return Out;
}

bool unescapeToken(const std::string &T, std::string &Out) {
  if (T == "%-") {
    Out.clear();
    return true;
  }
  Out.clear();
  for (std::size_t I = 0; I < T.size(); ++I) {
    if (T[I] != '%') {
      Out += T[I];
      continue;
    }
    auto Hex = [](char C) -> int {
      if (C >= '0' && C <= '9')
        return C - '0';
      if (C >= 'a' && C <= 'f')
        return C - 'a' + 10;
      return -1;
    };
    if (I + 2 >= T.size())
      return false;
    int Hi = Hex(T[I + 1]), Lo = Hex(T[I + 2]);
    if (Hi < 0 || Lo < 0)
      return false;
    Out += static_cast<char>((Hi << 4) | Lo);
    I += 2;
  }
  return true;
}

void splitTokens(const std::string &Line, std::vector<std::string> &Toks) {
  Toks.clear();
  std::size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && Line[I] == ' ')
      ++I;
    std::size_t Start = I;
    while (I < Line.size() && Line[I] != ' ')
      ++I;
    if (I > Start)
      Toks.push_back(Line.substr(Start, I - Start));
  }
}

/// Sequential line reader over the entry text; a file truncated
/// mid-line simply runs out of lines and fails whatever count check
/// comes next.
struct LineReader {
  const std::string &Text;
  std::size_t Pos = 0;

  explicit LineReader(const std::string &T) : Text(T) {}

  bool next(std::string &Line) {
    if (Pos >= Text.size())
      return false;
    std::size_t End = Text.find('\n', Pos);
    if (End == std::string::npos) {
      Line = Text.substr(Pos);
      Pos = Text.size();
    } else {
      Line = Text.substr(Pos, End - Pos);
      Pos = End + 1;
    }
    return true;
  }

  bool nextTokens(std::vector<std::string> &Toks) {
    std::string Line;
    if (!next(Line))
      return false;
    splitTokens(Line, Toks);
    return true;
  }
};

//===----------------------------------------------------------------===//
// Value reference encoding
//===----------------------------------------------------------------===//

/// Encoder state for one function: the allValues index plus the
/// operand-position fallback for values (constants, globals, callees)
/// that live outside the local enumeration but are operands of it.
struct ValueEncoder {
  std::vector<Value *> Locals;
  std::unordered_map<const Value *, unsigned> LocalIdx;
  std::unordered_map<const Value *, std::pair<unsigned, unsigned>> OperandAt;

  explicit ValueEncoder(const Function &F)
      : Locals(F.allValues()) {
    LocalIdx.reserve(Locals.size());
    for (unsigned I = 0; I != Locals.size(); ++I)
      LocalIdx.emplace(Locals[I], I);
    for (unsigned I = 0; I != Locals.size(); ++I) {
      auto *Inst = dyn_cast<Instruction>(Locals[I]);
      if (!Inst)
        continue;
      for (unsigned J = 0, E = Inst->getNumOperands(); J != E; ++J)
        OperandAt.emplace(Inst->getOperand(J), std::make_pair(I, J));
    }
  }

  /// False when \p V has no stable encoding (caller must abort the
  /// whole store — a partial entry would be wrong, not just stale).
  bool encode(const Value *V, std::string &Out) const {
    if (!V) {
      Out += 'n';
      return true;
    }
    auto L = LocalIdx.find(V);
    if (L != LocalIdx.end()) {
      Out += 'v';
      Out += std::to_string(L->second);
      return true;
    }
    auto O = OperandAt.find(V);
    if (O != OperandAt.end()) {
      Out += 'o';
      Out += std::to_string(O->second.first);
      Out += '.';
      Out += std::to_string(O->second.second);
      return true;
    }
    return false;
  }
};

struct ValueDecoder {
  std::vector<Value *> Locals;

  explicit ValueDecoder(const Function &F) : Locals(F.allValues()) {}

  bool decode(const std::string &T, Value *&Out) const {
    if (T == "n") {
      Out = nullptr;
      return true;
    }
    if (T.size() < 2)
      return false;
    if (T[0] == 'v') {
      uint64_t I;
      if (!parseU64(T.substr(1), I) || I >= Locals.size())
        return false;
      Out = Locals[static_cast<std::size_t>(I)];
      return true;
    }
    if (T[0] == 'o') {
      std::size_t Dot = T.find('.');
      if (Dot == std::string::npos)
        return false;
      uint64_t I, J;
      if (!parseU64(T.substr(1, Dot - 1), I) ||
          !parseU64(T.substr(Dot + 1), J) || I >= Locals.size())
        return false;
      auto *Inst = dyn_cast<Instruction>(Locals[static_cast<std::size_t>(I)]);
      if (!Inst || J >= Inst->getNumOperands())
        return false;
      Out = Inst->getOperand(static_cast<unsigned>(J));
      return true;
    }
    return false;
  }

  /// Typed decode helpers — a kind mismatch is corruption, not a cast
  /// trap.
  template <typename T>
  bool decodeAs(const std::string &Tok, T *&Out, bool AllowNull = false) const {
    Value *V;
    if (!decode(Tok, V))
      return false;
    if (!V) {
      if (!AllowNull)
        return false;
      Out = nullptr;
      return true;
    }
    Out = dyn_cast<T>(V);
    return Out != nullptr;
  }
};

// Loop field order on the wire: entry loopbegin loopbody backedge
// exit test iterator nextiter iterbegin iterstep iterend.
bool encodeLoop(const ValueEncoder &Enc, const ForLoopMatch &M,
                std::string &Out) {
  const Value *Fields[11] = {M.Entry,    M.LoopBegin, M.LoopBody,
                             M.Backedge, M.Exit,      M.Test,
                             M.Iterator, M.NextIter,  M.IterBegin,
                             M.IterStep, M.IterEnd};
  for (const Value *V : Fields) {
    Out += ' ';
    if (!Enc.encode(V, Out))
      return false;
  }
  return true;
}

bool decodeLoop(const ValueDecoder &Dec, const std::vector<std::string> &Toks,
                std::size_t First, ForLoopMatch &M) {
  if (First + 11 > Toks.size())
    return false;
  return Dec.decodeAs(Toks[First + 0], M.Entry) &&
         Dec.decodeAs(Toks[First + 1], M.LoopBegin) &&
         Dec.decodeAs(Toks[First + 2], M.LoopBody) &&
         Dec.decodeAs(Toks[First + 3], M.Backedge) &&
         Dec.decodeAs(Toks[First + 4], M.Exit) &&
         Dec.decodeAs(Toks[First + 5], M.Test) &&
         Dec.decodeAs(Toks[First + 6], M.Iterator) &&
         Dec.decode(Toks[First + 7], M.NextIter) && M.NextIter &&
         Dec.decode(Toks[First + 8], M.IterBegin) && M.IterBegin &&
         Dec.decode(Toks[First + 9], M.IterStep) && M.IterStep &&
         Dec.decode(Toks[First + 10], M.IterEnd) && M.IterEnd;
}

void appendStatsLine(std::string &Out, const char *Tag,
                     const SolverStats &S) {
  Out += Tag;
  Out += ' ';
  Out += std::to_string(S.NodesVisited);
  Out += ' ';
  Out += std::to_string(S.CandidatesTried);
  Out += ' ';
  Out += std::to_string(S.Solutions);
  Out += '\n';
}

bool parseStatsTokens(const std::vector<std::string> &Toks, std::size_t First,
                      SolverStats &S) {
  return First + 3 <= Toks.size() &&
         parseU64(Toks[First + 0], S.NodesVisited) &&
         parseU64(Toks[First + 1], S.CandidatesTried) &&
         parseU64(Toks[First + 2], S.Solutions);
}

void appendIdiomStats(std::string &Out, const DetectionStats &Stats) {
  appendStatsLine(Out, "forloops", Stats.ForLoops);
  Out += "idioms ";
  Out += std::to_string(Stats.PerIdiom.size());
  Out += '\n';
  for (const auto &[Name, S] : Stats.PerIdiom) {
    Out += "i ";
    Out += escapeToken(Name);
    Out += ' ';
    Out += std::to_string(S.NodesVisited);
    Out += ' ';
    Out += std::to_string(S.CandidatesTried);
    Out += ' ';
    Out += std::to_string(S.Solutions);
    Out += '\n';
  }
}

bool parseIdiomStats(LineReader &R, DetectionStats &Stats) {
  std::vector<std::string> Toks;
  if (!R.nextTokens(Toks) || Toks.size() != 4 || Toks[0] != "forloops" ||
      !parseStatsTokens(Toks, 1, Stats.ForLoops))
    return false;
  uint64_t N;
  if (!R.nextTokens(Toks) || Toks.size() != 2 || Toks[0] != "idioms" ||
      !parseU64(Toks[1], N) || N > 100000)
    return false;
  for (uint64_t I = 0; I != N; ++I) {
    if (!R.nextTokens(Toks) || Toks.size() != 5 || Toks[0] != "i")
      return false;
    std::string Name;
    SolverStats S;
    if (!unescapeToken(Toks[1], Name) || !parseStatsTokens(Toks, 2, S))
      return false;
    // Duplicate names would silently merge — corrupt.
    if (!Stats.PerIdiom.emplace(Name, S).second)
      return false;
  }
  return true;
}

bool parseHeader(LineReader &R, char Tier, uint64_t ContentHash) {
  std::vector<std::string> Toks;
  if (!R.nextTokens(Toks) || Toks.size() != 3 || Toks[0] != kMagic ||
      Toks[1].size() != 1 || Toks[1][0] != Tier)
    return false;
  uint64_t Stored;
  return parseHexHash(Toks[2], Stored) && Stored == ContentHash;
}

bool parseTrailer(LineReader &R) {
  std::string Line;
  if (!R.next(Line) || Line != kTrailer)
    return false;
  // The trailer line must be newline-terminated and final: an entry
  // cut anywhere — even one byte short — never materializes, and
  // trailing garbage (e.g. a torn double write) is rejected too.
  if (R.Text.empty() || R.Text.back() != '\n' || R.Pos != R.Text.size())
    return false;
  return true;
}

} // namespace

//===----------------------------------------------------------------===//
// Function-tier serialization
//===----------------------------------------------------------------===//

std::string gr::serializeFunctionEntry(const Function &F,
                                       uint64_t ContentHash,
                                       const IdiomDetectionResult &R,
                                       const DetectionStats &Stats) {
  ValueEncoder Enc(F);
  std::string Out;
  Out += kMagic;
  Out += " f ";
  Out += hashToHex(ContentHash);
  Out += '\n';
  appendIdiomStats(Out, Stats);

  Out += "loops ";
  Out += std::to_string(R.ForLoops.size());
  Out += '\n';
  for (const ForLoopMatch &M : R.ForLoops) {
    Out += 'l';
    if (!encodeLoop(Enc, M, Out))
      return std::string();
    Out += '\n';
  }

  Out += "insts ";
  Out += std::to_string(R.Instances.size());
  Out += '\n';
  for (const IdiomInstance &I : R.Instances) {
    Out += "b ";
    Out += escapeToken(I.Idiom);
    Out += ' ';
    Out += std::to_string(static_cast<unsigned>(I.Op));
    if (!encodeLoop(Enc, I.Loop, Out))
      return std::string();
    Out += ' ';
    Out += std::to_string(I.Captures.size());
    Out += '\n';
    for (const auto &[Name, V] : I.Captures) {
      Out += "c ";
      Out += escapeToken(Name);
      Out += ' ';
      if (!Enc.encode(V, Out))
        return std::string();
      Out += '\n';
    }
  }
  Out += kTrailer;
  Out += '\n';
  return Out;
}

bool gr::materializeFunctionEntry(const std::string &Text, Function &F,
                                  uint64_t ContentHash,
                                  IdiomDetectionResult &Out,
                                  DetectionStats &StatsOut) {
  LineReader R(Text);
  if (!parseHeader(R, 'f', ContentHash))
    return false;
  DetectionStats Stats;
  if (!parseIdiomStats(R, Stats))
    return false;

  ValueDecoder Dec(F);
  std::vector<std::string> Toks;
  IdiomDetectionResult Result;

  uint64_t NLoops;
  if (!R.nextTokens(Toks) || Toks.size() != 2 || Toks[0] != "loops" ||
      !parseU64(Toks[1], NLoops) || NLoops > 1000000)
    return false;
  Result.ForLoops.resize(static_cast<std::size_t>(NLoops));
  for (uint64_t I = 0; I != NLoops; ++I) {
    if (!R.nextTokens(Toks) || Toks.size() != 12 || Toks[0] != "l" ||
        !decodeLoop(Dec, Toks, 1, Result.ForLoops[I]))
      return false;
  }

  uint64_t NInsts;
  if (!R.nextTokens(Toks) || Toks.size() != 2 || Toks[0] != "insts" ||
      !parseU64(Toks[1], NInsts) || NInsts > 1000000)
    return false;
  Result.Instances.resize(static_cast<std::size_t>(NInsts));
  for (uint64_t I = 0; I != NInsts; ++I) {
    IdiomInstance &Inst = Result.Instances[I];
    uint64_t Op, NCaps;
    if (!R.nextTokens(Toks) || Toks.size() != 15 || Toks[0] != "b" ||
        !unescapeToken(Toks[1], Inst.Idiom) || Inst.Idiom.empty() ||
        !parseU64(Toks[2], Op) ||
        Op > static_cast<uint64_t>(ReductionOperator::Unknown) ||
        !decodeLoop(Dec, Toks, 3, Inst.Loop) ||
        !parseU64(Toks[14], NCaps) || NCaps > 10000)
      return false;
    Inst.Op = static_cast<ReductionOperator>(Op);
    for (uint64_t C = 0; C != NCaps; ++C) {
      std::string Name;
      Value *V;
      if (!R.nextTokens(Toks) || Toks.size() != 3 || Toks[0] != "c" ||
          !unescapeToken(Toks[1], Name) || !Dec.decode(Toks[2], V) || !V ||
          !Inst.Captures.emplace(Name, V).second)
        return false;
    }
  }
  if (!parseTrailer(R))
    return false;

  Out = std::move(Result);
  StatsOut += Stats;
  return true;
}

//===----------------------------------------------------------------===//
// Module-tier serialization
//===----------------------------------------------------------------===//

std::string gr::serializeModuleEntry(uint64_t ContentHash,
                                     const CachedModuleSummary &S) {
  std::string Out;
  Out += kMagic;
  Out += " m ";
  Out += hashToHex(ContentHash);
  Out += '\n';
  Out += "functions ";
  Out += std::to_string(S.Functions);
  Out += '\n';
  Out += "counts ";
  Out += std::to_string(S.Counts.Scalars);
  Out += ' ';
  Out += std::to_string(S.Counts.Histograms);
  Out += ' ';
  Out += std::to_string(S.Counts.Scans);
  Out += ' ';
  Out += std::to_string(S.Counts.ArgMinMax);
  Out += '\n';
  appendIdiomStats(Out, S.Stats);
  Out += kTrailer;
  Out += '\n';
  return Out;
}

bool gr::materializeModuleEntry(const std::string &Text, uint64_t ContentHash,
                                CachedModuleSummary &Out) {
  LineReader R(Text);
  if (!parseHeader(R, 'm', ContentHash))
    return false;
  CachedModuleSummary S;
  std::vector<std::string> Toks;
  uint64_t V;
  if (!R.nextTokens(Toks) || Toks.size() != 2 || Toks[0] != "functions" ||
      !parseU64(Toks[1], V) || V > 1000000)
    return false;
  S.Functions = static_cast<unsigned>(V);
  uint64_t C0, C1, C2, C3;
  if (!R.nextTokens(Toks) || Toks.size() != 5 || Toks[0] != "counts" ||
      !parseU64(Toks[1], C0) || !parseU64(Toks[2], C1) ||
      !parseU64(Toks[3], C2) || !parseU64(Toks[4], C3) || C0 > 1000000 ||
      C1 > 1000000 || C2 > 1000000 || C3 > 1000000)
    return false;
  S.Counts.Scalars = static_cast<unsigned>(C0);
  S.Counts.Histograms = static_cast<unsigned>(C1);
  S.Counts.Scans = static_cast<unsigned>(C2);
  S.Counts.ArgMinMax = static_cast<unsigned>(C3);
  if (!parseIdiomStats(R, S.Stats) || !parseTrailer(R))
    return false;
  Out = std::move(S);
  return true;
}

//===----------------------------------------------------------------===//
// Key derivation
//===----------------------------------------------------------------===//

uint64_t DetectionCache::functionContentHash(const Function &F) {
  return hashBytes(functionToString(F));
}

uint64_t DetectionCache::environmentHash(Module &M,
                                         FunctionAnalysisManager &AM) {
  const PurityAnalysis &P = AM.getPurity(M);
  ContentHasher H;
  H.u64(M.functions().size());
  for (const auto &F : M.functions()) {
    H.str(F->getName());
    H.u64(F->getNumArgs());
    H.u64(F->isDeclaration() ? 1 : 0);
    H.u64(static_cast<uint64_t>(P.getKind(F.get())));
  }
  H.u64(M.globals().size());
  for (const auto &G : M.globals()) {
    H.str(G->getName());
    H.str(G->getContainedType()->getString());
  }
  return H.value();
}

FunctionCacheKey DetectionCache::functionKey(Function &F,
                                             FunctionAnalysisManager &AM,
                                             const IdiomRegistry &Registry,
                                             SolverKind Kind) const {
  FunctionCacheKey K;
  K.Content = functionContentHash(F);
  ContentHasher H;
  H.u64(kSchemaVersion);
  H.u64('f');
  H.u64(K.Content);
  H.u64(environmentHash(*F.getParent(), AM));
  H.u64(Registry.fingerprint());
  H.u64(static_cast<uint64_t>(resolveSolverKind(Kind)));
  K.Combined = H.value();
  return K;
}

ModuleCacheKey DetectionCache::moduleKey(const std::string &Text,
                                         const IdiomRegistry &Registry,
                                         SolverKind Kind,
                                         uint64_t SourceTag) const {
  ModuleCacheKey K;
  K.Content = hashBytes(Text);
  ContentHasher H;
  H.u64(kSchemaVersion);
  H.u64('m');
  H.u64(SourceTag);
  H.u64(K.Content);
  H.u64(Registry.fingerprint());
  H.u64(static_cast<uint64_t>(resolveSolverKind(Kind)));
  K.Combined = H.value();
  return K;
}

//===----------------------------------------------------------------===//
// Tiers
//===----------------------------------------------------------------===//

DetectionCache::DetectionCache(Config C) : Cfg(std::move(C)) {
  if (Cfg.MaxMemoryEntries == 0)
    Cfg.MaxMemoryEntries = 1;
}

std::shared_ptr<const std::string> DetectionCache::memoryGet(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(MemMutex);
  auto It = Memory.find(Key);
  if (It == Memory.end())
    return nullptr;
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  return It->second.Text;
}

void DetectionCache::memoryPut(uint64_t Key,
                               std::shared_ptr<const std::string> Text) {
  std::lock_guard<std::mutex> Lock(MemMutex);
  auto It = Memory.find(Key);
  if (It != Memory.end()) {
    It->second.Text = std::move(Text);
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return;
  }
  Lru.push_front(Key);
  Memory.emplace(Key, Entry{std::move(Text), Lru.begin()});
  while (Memory.size() > Cfg.MaxMemoryEntries) {
    Memory.erase(Lru.back());
    Lru.pop_back();
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string DetectionCache::entryPath(uint64_t Combined) const {
  return Cfg.Dir + "/" + hashToHex(Combined) + ".grc";
}

bool DetectionCache::diskGet(uint64_t Key, std::string &Out) const {
  // An injected read fault degrades exactly like an unreadable file:
  // a clean miss (the caller recomputes and re-stores).
  if (faults::shouldFail(faults::Site::CacheRead))
    return false;
  std::FILE *F = std::fopen(entryPath(Key).c_str(), "rb");
  if (!F)
    return false;
  Out.clear();
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  return Ok;
}

void DetectionCache::diskPut(uint64_t Key, const std::string &Text) const {
  if (Cfg.Dir.empty())
    return;
  ::mkdir(Cfg.Dir.c_str(), 0777); // EEXIST is the common case.
  static std::atomic<uint64_t> TmpCounter{0};
  std::string Final = entryPath(Key);
  // Write-then-rename: readers only ever see absent or complete
  // entries; a crash leaves a .tmp file that never matches a key.
  // The disk tier is a pure acceleration of the memory tier, so a
  // failed publish (short write, ENOSPC, unwritable dir, injected
  // cache_write/cache_rename faults) is non-fatal: a bounded retry
  // with backoff absorbs transient faults, and ultimate failure
  // unlinks the temp file and counts one DiskWriteFailure while the
  // entry keeps being served from memory.
  constexpr unsigned Attempts = 3;
  for (unsigned Attempt = 0; Attempt != Attempts; ++Attempt) {
    if (Attempt)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1u << (Attempt - 1)));
    std::string Tmp = Final + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(TmpCounter.fetch_add(1));
    std::FILE *F = std::fopen(Tmp.c_str(), "wb");
    if (!F)
      continue;
    bool Ok = !faults::shouldFail(faults::Site::CacheWrite) &&
              std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
    Ok = (std::fclose(F) == 0) && Ok;
    Ok = Ok && !faults::shouldFail(faults::Site::CacheRename) &&
         std::rename(Tmp.c_str(), Final.c_str()) == 0;
    if (Ok)
      return;
    std::remove(Tmp.c_str());
  }
  DiskWriteFailures.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const std::string> DetectionCache::fetch(uint64_t Key,
                                                         bool &FromDisk) {
  FromDisk = false;
  if (auto P = memoryGet(Key))
    return P;
  if (Cfg.Dir.empty())
    return nullptr;
  std::string Raw;
  if (!diskGet(Key, Raw))
    return nullptr;
  FromDisk = true;
  auto P = std::make_shared<const std::string>(std::move(Raw));
  memoryPut(Key, P);
  return P;
}

bool DetectionCache::lookupFunction(const FunctionCacheKey &K, Function &F,
                                    IdiomDetectionResult &Out,
                                    DetectionStats &StatsOut,
                                    bool CountMiss) {
  bool FromDisk = false;
  if (auto Text = fetch(K.Combined, FromDisk)) {
    IdiomDetectionResult R;
    DetectionStats S;
    if (materializeFunctionEntry(*Text, F, K.Content, R, S)) {
      FunctionHits.fetch_add(1, std::memory_order_relaxed);
      if (FromDisk)
        DiskHits.fetch_add(1, std::memory_order_relaxed);
      Out = std::move(R);
      StatsOut += S;
      return true;
    }
    CorruptEntries.fetch_add(1, std::memory_order_relaxed);
    evictCorrupt(K.Combined);
  }
  if (CountMiss)
    FunctionMisses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void DetectionCache::evictCorrupt(uint64_t Key) {
  {
    std::lock_guard<std::mutex> Lock(MemMutex);
    auto It = Memory.find(Key);
    if (It != Memory.end()) {
      Lru.erase(It->second.LruIt);
      Memory.erase(It);
    }
  }
  // Also unlink the on-disk file (when there is one): a corrupt entry
  // is counted and reported exactly once, then gone — later lookups
  // of the same key are plain misses, and the next store rewrites a
  // good entry in its place.
  if (!Cfg.Dir.empty())
    std::remove(entryPath(Key).c_str());
}

void DetectionCache::storeFunction(const FunctionCacheKey &K,
                                   const Function &F,
                                   const IdiomDetectionResult &R,
                                   const DetectionStats &Stats) {
  std::string Text = serializeFunctionEntry(F, K.Content, R, Stats);
  if (Text.empty())
    return; // Unencodable result: skip, stay correct.
  FunctionStores.fetch_add(1, std::memory_order_relaxed);
  auto Ptr = std::make_shared<const std::string>(std::move(Text));
  memoryPut(K.Combined, Ptr);
  diskPut(K.Combined, *Ptr);
}

bool DetectionCache::lookupModule(const ModuleCacheKey &K,
                                  CachedModuleSummary &Out) {
  bool FromDisk = false;
  if (auto Text = fetch(K.Combined, FromDisk)) {
    CachedModuleSummary S;
    if (materializeModuleEntry(*Text, K.Content, S)) {
      ModuleHits.fetch_add(1, std::memory_order_relaxed);
      if (FromDisk)
        DiskHits.fetch_add(1, std::memory_order_relaxed);
      Out = std::move(S);
      return true;
    }
    CorruptEntries.fetch_add(1, std::memory_order_relaxed);
    evictCorrupt(K.Combined);
  }
  ModuleMisses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void DetectionCache::storeModule(const ModuleCacheKey &K,
                                 const CachedModuleSummary &S) {
  std::string Text = serializeModuleEntry(K.Content, S);
  ModuleStores.fetch_add(1, std::memory_order_relaxed);
  auto Ptr = std::make_shared<const std::string>(std::move(Text));
  memoryPut(K.Combined, Ptr);
  diskPut(K.Combined, *Ptr);
}

CacheCounters DetectionCache::counters() const {
  CacheCounters C;
  C.FunctionHits = FunctionHits.load(std::memory_order_relaxed);
  C.FunctionMisses = FunctionMisses.load(std::memory_order_relaxed);
  C.FunctionStores = FunctionStores.load(std::memory_order_relaxed);
  C.ModuleHits = ModuleHits.load(std::memory_order_relaxed);
  C.ModuleMisses = ModuleMisses.load(std::memory_order_relaxed);
  C.ModuleStores = ModuleStores.load(std::memory_order_relaxed);
  C.DiskHits = DiskHits.load(std::memory_order_relaxed);
  C.CorruptEntries = CorruptEntries.load(std::memory_order_relaxed);
  C.Evictions = Evictions.load(std::memory_order_relaxed);
  C.DiskWriteFailures = DiskWriteFailures.load(std::memory_order_relaxed);
  return C;
}

void DetectionCache::resetCounters() {
  FunctionHits = 0;
  FunctionMisses = 0;
  FunctionStores = 0;
  ModuleHits = 0;
  ModuleMisses = 0;
  ModuleStores = 0;
  DiskHits = 0;
  CorruptEntries = 0;
  Evictions = 0;
  DiskWriteFailures = 0;
}

//===----------------------------------------------------------------===//
// Process-wide instance
//===----------------------------------------------------------------===//

namespace {

struct ActiveState {
  std::mutex M;
  std::atomic<bool> Resolved{false};
  std::atomic<DetectionCache *> Ptr{nullptr};
  /// Replaced caches stay alive: detection lanes may still hold the
  /// raw pointer they loaded before a configure().
  std::vector<std::unique_ptr<DetectionCache>> Owned;
};

ActiveState &activeState() {
  // Intentionally leaked: pool worker threads may consult the cache
  // during process teardown, after static destructors would have run.
  static ActiveState *S = new ActiveState();
  return *S;
}

std::size_t memEntriesFromEnv() {
  if (const char *E = std::getenv("GR_CACHE_MEM_ENTRIES")) {
    uint64_t V;
    if (parseU64(E, V) && V > 0 && V <= 100000000)
      return static_cast<std::size_t>(V);
    // Same junk-falls-back contract as GR_DISPATCH / GR_DETECT_WORKERS.
    static bool Warned = [] {
      errs() << "cache: ignoring GR_CACHE_MEM_ENTRIES: want a decimal "
                "integer in [1, 100000000]\n";
      return true;
    }();
    (void)Warned;
  }
  return DetectionCache::Config().MaxMemoryEntries;
}

void installFromEnvironment(ActiveState &S) {
  const char *Mode = std::getenv("GR_CACHE");
  const char *Dir = std::getenv("GR_CACHE_DIR");
  DetectionCache::Config C;
  bool Enable = false;
  if (Mode && std::strcmp(Mode, "off") == 0) {
    Enable = false; // GR_CACHE=off wins over GR_CACHE_DIR.
  } else if (Mode && std::strcmp(Mode, "mem") == 0) {
    Enable = true; // Memory-only.
  } else if (Dir && *Dir) {
    Enable = true;
    C.Dir = Dir;
  }
  if (!Enable) {
    S.Ptr.store(nullptr, std::memory_order_release);
    S.Resolved.store(true, std::memory_order_release);
    return;
  }
  C.MaxMemoryEntries = memEntriesFromEnv();
  S.Owned.push_back(std::make_unique<DetectionCache>(std::move(C)));
  S.Ptr.store(S.Owned.back().get(), std::memory_order_release);
  S.Resolved.store(true, std::memory_order_release);
}

} // namespace

DetectionCache *DetectionCache::active() {
  ActiveState &S = activeState();
  if (S.Resolved.load(std::memory_order_acquire))
    return S.Ptr.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> Lock(S.M);
  if (!S.Resolved.load(std::memory_order_acquire))
    installFromEnvironment(S);
  return S.Ptr.load(std::memory_order_acquire);
}

void DetectionCache::configure(Config C) {
  ActiveState &S = activeState();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Owned.push_back(std::make_unique<DetectionCache>(std::move(C)));
  S.Ptr.store(S.Owned.back().get(), std::memory_order_release);
  S.Resolved.store(true, std::memory_order_release);
}

void DetectionCache::disable() {
  ActiveState &S = activeState();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Ptr.store(nullptr, std::memory_order_release);
  S.Resolved.store(true, std::memory_order_release);
}

void DetectionCache::configureFromEnvironment() {
  ActiveState &S = activeState();
  std::lock_guard<std::mutex> Lock(S.M);
  installFromEnvironment(S);
}
