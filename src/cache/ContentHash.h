//===- ContentHash.h - stable content hashing for cache keys --*- C++ -*-===//
///
/// \file
/// The one hash the detection cache keys on: FNV-1a over bytes, with
/// small mixing helpers for composing multi-part keys. The function is
/// fixed forever — on-disk cache entries are addressed by these
/// values, so changing it silently orphans every persisted entry.
/// Bump DetectionCache's schema version instead when key semantics
/// change (see cache/DetectionCache.h).
///
//===----------------------------------------------------------------------===//

#ifndef GR_CACHE_CONTENTHASH_H
#define GR_CACHE_CONTENTHASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gr {

/// Incremental FNV-1a (64-bit). Deliberately boring: stable across
/// platforms and builds, cheap enough to run over every module text a
/// server receives.
class ContentHasher {
public:
  ContentHasher &bytes(const void *Data, std::size_t Size) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (std::size_t I = 0; I < Size; ++I) {
      H ^= P[I];
      H *= 1099511628211ull;
    }
    return *this;
  }
  ContentHasher &str(std::string_view S) {
    // Length-prefix so ("ab","c") and ("a","bc") cannot collide.
    u64(S.size());
    return bytes(S.data(), S.size());
  }
  ContentHasher &u64(uint64_t V) {
    unsigned char Buf[8];
    for (int I = 0; I < 8; ++I)
      Buf[I] = static_cast<unsigned char>(V >> (8 * I));
    return bytes(Buf, 8);
  }
  uint64_t value() const { return H; }

private:
  uint64_t H = 14695981039346656037ull;
};

/// One-shot hash of a string.
uint64_t hashBytes(std::string_view S);

/// 16 lowercase hex digits of \p V (fixed width: these are file names
/// and wire tokens).
std::string hashToHex(uint64_t V);

/// Parses exactly 16 hex digits; returns false on anything else.
bool parseHexHash(std::string_view Text, uint64_t &Out);

} // namespace gr

#endif // GR_CACHE_CONTENTHASH_H
