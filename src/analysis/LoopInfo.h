//===- LoopInfo.h - natural loop detection --------------------*- C++ -*-===//
///
/// \file
/// Natural-loop forest built from dominator-identified back edges,
/// with the derived structure the reduction idioms need: preheader,
/// latch, exits, nesting, canonical induction variable and trip
/// bounds.
///
//===----------------------------------------------------------------------===//

#ifndef GR_ANALYSIS_LOOPINFO_H
#define GR_ANALYSIS_LOOPINFO_H

#include <memory>
#include <set>
#include <vector>

namespace gr {

class BasicBlock;
class DomTree;
class Function;
class PhiInst;
class Value;

/// One natural loop.
class Loop {
public:
  BasicBlock *getHeader() const { return Header; }
  BasicBlock *getLatch() const { return Latch; }

  /// The unique out-of-loop predecessor of the header, or null when
  /// the loop is not in canonical form.
  BasicBlock *getPreheader() const { return Preheader; }

  bool contains(const BasicBlock *BB) const {
    return Blocks.count(const_cast<BasicBlock *>(BB)) != 0;
  }
  bool contains(const Loop *Other) const;
  const std::set<BasicBlock *> &blocks() const { return Blocks; }

  Loop *getParent() const { return Parent; }
  const std::vector<Loop *> &subLoops() const { return SubLoops; }
  unsigned getDepth() const;

  /// Blocks outside the loop that loop blocks branch to.
  std::vector<BasicBlock *> exitBlocks() const;

  /// The canonical induction variable: a header phi with exactly two
  /// incoming values (preheader: init; latch: add(phi, step)), or null.
  PhiInst *getCanonicalIterator() const { return Iterator; }
  /// Iterator start value (from the preheader edge), or null.
  Value *getIterBegin() const { return IterBegin; }
  /// Iterator increment, or null.
  Value *getIterStep() const { return IterStep; }
  /// Loop bound: the value the header comparison tests against, or
  /// null when the exit condition is not a simple compare.
  Value *getIterEnd() const { return IterEnd; }

  /// Returns true if \p V is invariant in this loop: constants,
  /// arguments, globals and instructions defined outside the loop.
  bool isInvariant(const Value *V) const;

private:
  friend class LoopInfo;

  BasicBlock *Header = nullptr;
  BasicBlock *Latch = nullptr;
  BasicBlock *Preheader = nullptr;
  std::set<BasicBlock *> Blocks;
  Loop *Parent = nullptr;
  std::vector<Loop *> SubLoops;

  PhiInst *Iterator = nullptr;
  Value *IterBegin = nullptr;
  Value *IterStep = nullptr;
  Value *IterEnd = nullptr;
};

/// The loop forest of one function.
class LoopInfo {
public:
  LoopInfo(const Function &F, const DomTree &DT);

  const std::vector<std::unique_ptr<Loop>> &loops() const { return Loops; }

  /// Innermost loop containing \p BB, or null.
  Loop *getLoopFor(const BasicBlock *BB) const;

  /// Top-level (outermost) loops.
  std::vector<Loop *> topLevelLoops() const;

  /// All loops, innermost first (useful for bottom-up processing).
  std::vector<Loop *> loopsInnermostFirst() const;

private:
  void analyzeInduction(Loop &L);

  std::vector<std::unique_ptr<Loop>> Loops;
};

} // namespace gr

#endif // GR_ANALYSIS_LOOPINFO_H
