//===- CFGUtils.h - CFG traversal helpers ---------------------*- C++ -*-===//
///
/// \file
/// Reverse-post-order numbering and reachability helpers shared by the
/// dominator, loop and constraint machinery.
///
//===----------------------------------------------------------------------===//

#ifndef GR_ANALYSIS_CFGUTILS_H
#define GR_ANALYSIS_CFGUTILS_H

#include <map>
#include <set>
#include <vector>

namespace gr {

class BasicBlock;
class Function;

/// Blocks of \p F in reverse post order from the entry. Unreachable
/// blocks are excluded.
std::vector<BasicBlock *> reversePostOrder(const Function &F);

/// Returns true if \p To is reachable from \p From along CFG edges
/// while never entering any block in \p Excluded. \p From itself is
/// allowed even if excluded (the search starts at its successors when
/// \p From == \p To would otherwise be trivial).
bool reachableWithout(BasicBlock *From, BasicBlock *To,
                      const std::set<BasicBlock *> &Excluded);

/// All blocks reachable from the entry of \p F.
std::set<BasicBlock *> reachableBlocks(const Function &F);

} // namespace gr

#endif // GR_ANALYSIS_CFGUTILS_H
