//===- SCoPInfo.cpp -------------------------------------------*- C++ -*-===//

#include "analysis/SCoPInfo.h"

#include "analysis/AffineForms.h"
#include "analysis/LoopInfo.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"

using namespace gr;

namespace {

/// Walks a GEP chain down to its base object. Returns null when the
/// base is not a statically known object (alloca, global, argument).
Value *getBaseObject(Value *Ptr, int Depth = 0) {
  if (Depth > 16)
    return nullptr;
  if (auto *GEP = dyn_cast<GEPInst>(Ptr))
    return getBaseObject(GEP->getPointer(), Depth + 1);
  if (isa<AllocaInst>(Ptr) || isa<GlobalVariable>(Ptr) ||
      isa<Argument>(Ptr))
    return Ptr;
  return nullptr;
}

/// Checks that every subscript on the GEP chain of \p Ptr is affine
/// over \p Allowed.
bool accessIsAffine(Value *Ptr, const std::map<Value *, bool> &Allowed) {
  while (auto *GEP = dyn_cast<GEPInst>(Ptr)) {
    if (!isAffineOver(GEP->getIndex(), Allowed))
      return false;
    Ptr = GEP->getPointer();
  }
  return getBaseObject(Ptr) != nullptr;
}

/// Affine (static) branch condition: integer comparison of affine
/// expressions, possibly combined with i1 logic.
bool conditionIsStatic(Value *Cond, const std::map<Value *, bool> &Allowed,
                       int Depth = 0) {
  if (Depth > 8)
    return false;
  if (auto *Cmp = dyn_cast<CmpInst>(Cond))
    return Cmp->isIntPredicate() &&
           isAffineOver(Cmp->getLHS(), Allowed) &&
           isAffineOver(Cmp->getRHS(), Allowed);
  if (auto *Bin = dyn_cast<BinaryInst>(Cond)) {
    using Op = BinaryInst::BinaryOp;
    if (Bin->getBinaryOp() == Op::And || Bin->getBinaryOp() == Op::Or ||
        Bin->getBinaryOp() == Op::Xor)
      return conditionIsStatic(Bin->getLHS(), Allowed, Depth + 1) &&
             conditionIsStatic(Bin->getRHS(), Allowed, Depth + 1);
  }
  if (auto *CI = dyn_cast<ConstantInt>(Cond))
    return CI->getType()->isInt1();
  return false;
}

/// Collects \p Root and all loops nested in it.
std::vector<Loop *> nestLoops(Loop *Root, const LoopInfo &LI) {
  std::vector<Loop *> Result;
  for (const auto &L : LI.loops())
    if (L.get() == Root || Root->contains(L.get()))
      Result.push_back(L.get());
  return Result;
}

/// True when some header phi in the nest is an associative-update
/// accumulator (the pattern Polly's reduction extension exploits).
bool nestHasReduction(const std::vector<Loop *> &Nest) {
  for (Loop *L : Nest) {
    if (!L->getLatch() || !L->getPreheader())
      continue;
    for (PhiInst *Phi : L->getHeader()->phis()) {
      if (Phi == L->getCanonicalIterator() || Phi->getNumIncoming() != 2)
        continue;
      auto *Update =
          dyn_cast_or_null<BinaryInst>(Phi->getIncomingValueFor(L->getLatch()));
      if (!Update || !Update->isAssociative())
        continue;
      if (Update->getLHS() == Phi || Update->getRHS() == Phi)
        return true;
    }
  }
  return false;
}

/// Full qualification check for the nest rooted at \p Root.
bool nestQualifies(Loop *Root, const Function &F, const LoopInfo &LI) {
  std::vector<Loop *> Nest = nestLoops(Root, LI);

  // Allowed affine bases: canonical iterators of the nest plus the
  // function's parameters (Polly's "parameters of the SCoP").
  std::map<Value *, bool> Allowed;
  for (Loop *L : Nest) {
    if (!L->getCanonicalIterator() || !L->getIterEnd() ||
        !L->getPreheader() || !L->getLatch())
      return false;
    Allowed[L->getCanonicalIterator()] = true;
  }
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
    Allowed[F.getArg(I)] = true;

  // Iteration spaces must be affine over parameters and outer
  // iterators (runtime bounds loaded from memory disqualify).
  for (Loop *L : Nest)
    if (!isAffineOver(L->getIterBegin(), Allowed) ||
        !isAffineOver(L->getIterEnd(), Allowed) ||
        !isAffineOver(L->getIterStep(), Allowed))
      return false;

  for (BasicBlock *BB : Root->blocks()) {
    for (Instruction *I : *BB) {
      if (isa<CallInst>(I))
        return false; // Polly rejects call-containing regions.
      if (auto *Load = dyn_cast<LoadInst>(I)) {
        if (!accessIsAffine(Load->getPointer(), Allowed))
          return false;
        continue;
      }
      if (auto *Store = dyn_cast<StoreInst>(I)) {
        if (!accessIsAffine(Store->getPointer(), Allowed))
          return false;
        continue;
      }
      if (auto *Br = dyn_cast<BranchInst>(I)) {
        if (Br->isConditional() &&
            !conditionIsStatic(Br->getCondition(), Allowed))
          return false;
        continue;
      }
    }
  }
  return true;
}

/// Recursive maximal-region search: an outermost qualifying loop forms
/// one SCoP; otherwise descend into subloops.
void collectSCoPs(Loop *L, const Function &F, const LoopInfo &LI,
                  std::vector<SCoP> &Out) {
  if (nestQualifies(L, F, LI)) {
    Out.push_back({L, nestHasReduction(nestLoops(L, LI))});
    return;
  }
  for (Loop *Sub : L->subLoops())
    collectSCoPs(Sub, F, LI, Out);
}

} // namespace

std::vector<SCoP> gr::findSCoPs(const Function &F, const LoopInfo &LI) {
  std::vector<SCoP> Result;
  for (Loop *Top : LI.topLevelLoops())
    collectSCoPs(Top, F, LI, Result);
  return Result;
}
