//===- AffineForms.h - linear decomposition of index math -----*- C++ -*-===//
///
/// \file
/// A small scalar-evolution substitute: decomposes integer expressions
/// into linear combinations of opaque base values plus a constant.
/// Both the reduction idioms (condition 3 of §3.1.1: "indices affine in
/// the loop iterator") and the SCoP detector are built on it.
///
//===----------------------------------------------------------------------===//

#ifndef GR_ANALYSIS_AFFINEFORMS_H
#define GR_ANALYSIS_AFFINEFORMS_H

#include <cstdint>
#include <map>
#include <optional>

namespace gr {

class Loop;
class Value;

/// sum(Coeff_i * Base_i) + Constant over i64 values. Bases are opaque
/// leaf values (phis, loads, arguments, calls...).
struct AffineForm {
  std::map<Value *, int64_t> Terms;
  int64_t Constant = 0;

  /// Coefficient of \p Base (0 when absent).
  int64_t coeff(Value *Base) const {
    auto It = Terms.find(Base);
    return It == Terms.end() ? 0 : It->second;
  }
};

/// Decomposes \p V (must be i64-typed) into an AffineForm. Returns
/// nullopt for expressions whose linearity cannot be established
/// (e.g. products of two non-constants).
std::optional<AffineForm> computeAffineForm(Value *V);

/// True if \p V is affine in \p L's canonical iterator: decomposable
/// with every non-iterator base loop-invariant in \p L. A zero
/// iterator coefficient still counts (loop-invariant index).
bool isAffineInLoop(Value *V, const Loop &L);

/// True if \p V is affine with every base drawn from \p AllowedBases
/// (the SCoP notion: enclosing-loop iterators and function
/// parameters).
bool isAffineOver(Value *V, const std::map<Value *, bool> &AllowedBases);

} // namespace gr

#endif // GR_ANALYSIS_AFFINEFORMS_H
