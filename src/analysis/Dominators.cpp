//===- Dominators.cpp -----------------------------------------*- C++ -*-===//

#include "analysis/Dominators.h"

#include "analysis/CFGUtils.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "support/ErrorHandling.h"

#include <algorithm>

using namespace gr;

namespace {

/// Index-based Cooper-Harvey-Kennedy core, shared by both trees.
/// \p Order is a reverse post order with the root at index 0; \p Preds
/// gives predecessor indices in the (possibly reversed) graph.
/// Returns idom indices (idom[0] == 0).
std::vector<unsigned>
computeIDoms(const std::vector<std::vector<unsigned>> &Preds) {
  size_t N = Preds.size();
  constexpr unsigned Undef = ~0u;
  std::vector<unsigned> IDom(N, Undef);
  IDom[0] = 0;

  auto Intersect = [&IDom](unsigned A, unsigned B) {
    while (A != B) {
      while (A > B)
        A = IDom[A];
      while (B > A)
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B = 1; B != N; ++B) {
      unsigned NewIDom = Undef;
      for (unsigned P : Preds[B]) {
        if (IDom[P] == Undef)
          continue;
        NewIDom = (NewIDom == Undef) ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != Undef && IDom[B] != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
  return IDom;
}

} // namespace

DomTree::DomTree(const Function &F) : Root(F.getEntry()) {
  std::vector<BasicBlock *> Order = reversePostOrder(F);
  std::map<BasicBlock *, unsigned> Index;
  for (unsigned I = 0, E = static_cast<unsigned>(Order.size()); I != E; ++I)
    Index[Order[I]] = I;

  std::vector<std::vector<unsigned>> Preds(Order.size());
  for (unsigned I = 0, E = static_cast<unsigned>(Order.size()); I != E; ++I)
    for (BasicBlock *P : Order[I]->predecessors())
      if (Index.count(P))
        Preds[I].push_back(Index[P]);

  std::vector<unsigned> IDoms = computeIDoms(Preds);
  for (unsigned I = 0, E = static_cast<unsigned>(Order.size()); I != E;
       ++I) {
    IDom[Order[I]] = (I == 0) ? nullptr : Order[IDoms[I]];
    if (I != 0)
      Children[Order[IDoms[I]]].push_back(Order[I]);
  }

  // Dominance frontiers (Cooper et al.): walk from each join point's
  // predecessors up to the idom.
  for (BasicBlock *BB : Order) {
    std::vector<BasicBlock *> BlockPreds;
    for (BasicBlock *P : BB->predecessors())
      if (Index.count(P))
        BlockPreds.push_back(P);
    if (BlockPreds.size() < 2)
      continue;
    for (BasicBlock *P : BlockPreds) {
      BasicBlock *Runner = P;
      while (Runner && Runner != IDom[BB]) {
        Frontier[Runner].insert(BB);
        Runner = IDom[Runner];
      }
    }
  }
}

BasicBlock *DomTree::getIDom(BasicBlock *BB) const {
  auto It = IDom.find(BB);
  return It == IDom.end() ? nullptr : It->second;
}

bool DomTree::dominates(BasicBlock *A, BasicBlock *B) const {
  if (!contains(A) || !contains(B))
    return false;
  while (B) {
    if (A == B)
      return true;
    B = getIDom(B);
  }
  return false;
}

bool DomTree::dominates(const Value *Def, const Instruction *User) const {
  const auto *DefInst = dyn_cast<Instruction>(Def);
  if (!DefInst)
    return true;
  BasicBlock *DefBB = DefInst->getParent();
  BasicBlock *UseBB = User->getParent();
  if (DefBB == UseBB)
    return DefBB->indexOf(DefInst) < UseBB->indexOf(User);
  return strictlyDominates(DefBB, UseBB);
}

const std::set<BasicBlock *> &DomTree::getFrontier(BasicBlock *BB) const {
  auto It = Frontier.find(BB);
  return It == Frontier.end() ? EmptySet : It->second;
}

const std::vector<BasicBlock *> &
DomTree::getChildren(BasicBlock *BB) const {
  auto It = Children.find(BB);
  return It == Children.end() ? Empty : It->second;
}

PostDomTree::PostDomTree(const Function &F) {
  // Collect reachable blocks and exit blocks (ret or no successors).
  std::set<BasicBlock *> Reachable = reachableBlocks(F);
  std::vector<BasicBlock *> Exits;
  for (BasicBlock *BB : Reachable)
    if (BB->successors().empty())
      Exits.push_back(BB);
  if (Exits.empty())
    return; // Degenerate function (infinite loop); leave tree empty.

  // Reverse-graph RPO from a virtual exit that precedes all real exits.
  std::vector<BasicBlock *> Order; // post order of reverse DFS
  std::set<BasicBlock *> Visited;
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  for (BasicBlock *Exit : Exits) {
    if (!Visited.insert(Exit).second)
      continue;
    Stack.push_back({Exit, 0});
    while (!Stack.empty()) {
      auto &[BB, Cursor] = Stack.back();
      std::vector<BasicBlock *> RSuccs; // reverse-graph successors
      for (BasicBlock *P : BB->predecessors())
        if (Reachable.count(P))
          RSuccs.push_back(P);
      if (Cursor == RSuccs.size()) {
        Order.push_back(BB);
        Stack.pop_back();
        continue;
      }
      BasicBlock *Next = RSuccs[Cursor++];
      if (Visited.insert(Next).second)
        Stack.push_back({Next, 0});
    }
  }
  std::reverse(Order.begin(), Order.end());

  // Index 0 is the virtual exit; real blocks start at 1.
  std::map<BasicBlock *, unsigned> Index;
  for (unsigned I = 0, E = static_cast<unsigned>(Order.size()); I != E; ++I)
    Index[Order[I]] = I + 1;

  std::vector<std::vector<unsigned>> Preds(Order.size() + 1);
  for (BasicBlock *BB : Order) {
    unsigned I = Index[BB];
    // Reverse-graph predecessors are forward successors.
    for (BasicBlock *S : BB->successors())
      if (Index.count(S))
        Preds[I].push_back(Index[S]);
    if (BB->successors().empty())
      Preds[I].push_back(0); // Edge from the virtual exit.
  }

  std::vector<unsigned> IDoms = computeIDoms(Preds);
  for (BasicBlock *BB : Order) {
    unsigned I = Index[BB];
    IPDom[BB] = (IDoms[I] == 0) ? nullptr : Order[IDoms[I] - 1];
  }

  // Post-dominance frontiers: the frontier computation on the reverse
  // graph. A join point of the reverse graph is a block with two or
  // more forward successors; run up the post-dominator tree from each.
  for (BasicBlock *BB : Order) {
    std::vector<BasicBlock *> FwdSuccs;
    for (BasicBlock *S : BB->successors())
      if (Index.count(S))
        FwdSuccs.push_back(S);
    if (FwdSuccs.size() < 2)
      continue;
    for (BasicBlock *S : FwdSuccs) {
      BasicBlock *Runner = S;
      while (Runner && Runner != IPDom[BB]) {
        Frontier[Runner].insert(BB);
        auto It = IPDom.find(Runner);
        Runner = (It == IPDom.end()) ? nullptr : It->second;
      }
    }
  }
}

BasicBlock *PostDomTree::getIPDom(BasicBlock *BB) const {
  auto It = IPDom.find(BB);
  return It == IPDom.end() ? nullptr : It->second;
}

bool PostDomTree::postDominates(BasicBlock *A, BasicBlock *B) const {
  if (!contains(A) || !contains(B))
    return false;
  while (B) {
    if (A == B)
      return true;
    B = getIPDom(B);
  }
  return false;
}

const std::set<BasicBlock *> &
PostDomTree::getFrontier(BasicBlock *BB) const {
  auto It = Frontier.find(BB);
  return It == Frontier.end() ? EmptySet : It->second;
}
