//===- Purity.cpp ---------------------------------------------*- C++ -*-===//

#include "analysis/Purity.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Module.h"

using namespace gr;

PurityAnalysis::PurityAnalysis(const Module &M) {
  for (const auto &F : M.functions())
    Kinds[F.get()] = classify(F.get(), /*Depth=*/0);
}

PurityKind PurityAnalysis::getKind(const Function *F) const {
  auto It = Kinds.find(F);
  return It == Kinds.end() ? PurityKind::Impure : It->second;
}

PurityKind PurityAnalysis::classify(const Function *F, int Depth) {
  auto Memo = Kinds.find(F);
  if (Memo != Kinds.end())
    return Memo->second;
  // Declarations: trust the attribute. Math builtins are StrictPure;
  // other externals are Impure.
  if (F->isDeclaration())
    return F->isPure() ? PurityKind::StrictPure : PurityKind::Impure;
  if (Depth > 16)
    return PurityKind::Impure; // Deep or cyclic call chain: give up.

  PurityKind Result = PurityKind::StrictPure;
  auto Weaken = [&Result](PurityKind K) {
    if (K > Result)
      Result = K;
  };

  for (BasicBlock *BB : *F) {
    for (Instruction *I : *BB) {
      if (isa<StoreInst>(I))
        return PurityKind::Impure;
      if (isa<GlobalVariable>(I)) // Defensive; globals are not insts.
        continue;
      if (isa<LoadInst>(I)) {
        Weaken(PurityKind::ReadOnly);
        continue;
      }
      if (auto *Call = dyn_cast<CallInst>(I)) {
        Weaken(classify(Call->getCallee(), Depth + 1));
        if (Result == PurityKind::Impure)
          return Result;
        continue;
      }
      // Reads of globals' addresses are fine; loading through them was
      // handled above. Allocas would imply local state we don't track.
      if (isa<AllocaInst>(I))
        Weaken(PurityKind::ReadOnly);
    }
  }
  return Result;
}
