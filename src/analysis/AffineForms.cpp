//===- AffineForms.cpp ----------------------------------------*- C++ -*-===//

#include "analysis/AffineForms.h"

#include "analysis/LoopInfo.h"
#include "ir/Instruction.h"

using namespace gr;

namespace {

/// Recursive decomposition with a depth fuse against pathological
/// expression trees.
std::optional<AffineForm> decompose(Value *V, int Depth) {
  if (Depth > 32)
    return std::nullopt;

  AffineForm Form;
  if (auto *CI = dyn_cast<ConstantInt>(V)) {
    Form.Constant = CI->getValue();
    return Form;
  }

  auto *Bin = dyn_cast<BinaryInst>(V);
  if (!Bin) {
    Form.Terms[V] = 1; // Opaque leaf.
    return Form;
  }

  using Op = BinaryInst::BinaryOp;
  switch (Bin->getBinaryOp()) {
  case Op::Add:
  case Op::Sub: {
    auto L = decompose(Bin->getLHS(), Depth + 1);
    auto R = decompose(Bin->getRHS(), Depth + 1);
    if (!L || !R)
      return std::nullopt;
    int64_t Sign = Bin->getBinaryOp() == Op::Add ? 1 : -1;
    for (auto &[Base, Coeff] : R->Terms) {
      L->Terms[Base] += Sign * Coeff;
      if (L->Terms[Base] == 0)
        L->Terms.erase(Base);
    }
    L->Constant += Sign * R->Constant;
    return L;
  }
  case Op::Mul: {
    auto L = decompose(Bin->getLHS(), Depth + 1);
    auto R = decompose(Bin->getRHS(), Depth + 1);
    if (!L || !R)
      return std::nullopt;
    // Exactly one side must be a pure constant.
    const AffineForm *Scaled = nullptr;
    int64_t Scale = 0;
    if (L->Terms.empty()) {
      Scaled = &*R;
      Scale = L->Constant;
    } else if (R->Terms.empty()) {
      Scaled = &*L;
      Scale = R->Constant;
    } else {
      // Product of two non-constants: treat the whole multiply as an
      // opaque base. This is precisely what makes manually linearized
      // "flat" indexing (i*n + j with runtime n) non-affine.
      AffineForm Opaque;
      Opaque.Terms[V] = 1;
      return Opaque;
    }
    AffineForm Result;
    for (auto &[Base, Coeff] : Scaled->Terms)
      if (Coeff * Scale != 0)
        Result.Terms[Base] = Coeff * Scale;
    Result.Constant = Scaled->Constant * Scale;
    return Result;
  }
  case Op::Shl: {
    auto L = decompose(Bin->getLHS(), Depth + 1);
    auto *Amount = dyn_cast<ConstantInt>(Bin->getRHS());
    if (!L || !Amount || Amount->getValue() < 0 || Amount->getValue() > 32)
      break;
    int64_t Scale = int64_t(1) << Amount->getValue();
    for (auto &[Base, Coeff] : L->Terms)
      Coeff *= Scale;
    L->Constant *= Scale;
    return L;
  }
  default:
    break;
  }

  Form.Terms[V] = 1; // Anything else is an opaque leaf.
  return Form;
}

} // namespace

std::optional<AffineForm> gr::computeAffineForm(Value *V) {
  if (!V->getType()->isInt64())
    return std::nullopt;
  return decompose(V, 0);
}

bool gr::isAffineInLoop(Value *V, const Loop &L) {
  auto Form = computeAffineForm(V);
  if (!Form)
    return false;
  for (auto &[Base, Coeff] : Form->Terms) {
    (void)Coeff;
    if (Base == L.getCanonicalIterator())
      continue;
    if (!L.isInvariant(Base))
      return false;
  }
  return true;
}

bool gr::isAffineOver(Value *V,
                      const std::map<Value *, bool> &AllowedBases) {
  auto Form = computeAffineForm(V);
  if (!Form)
    return false;
  for (auto &[Base, Coeff] : Form->Terms) {
    (void)Coeff;
    if (!AllowedBases.count(Base))
      return false;
  }
  return true;
}
