//===- Dominators.h - dominator and post-dominator trees ------*- C++ -*-===//
///
/// \file
/// Dominator and post-dominator trees via the Cooper-Harvey-Kennedy
/// iterative algorithm, plus dominance frontiers (used by mem2reg and
/// the control-dependence analysis).
///
//===----------------------------------------------------------------------===//

#ifndef GR_ANALYSIS_DOMINATORS_H
#define GR_ANALYSIS_DOMINATORS_H

#include <map>
#include <set>
#include <vector>

namespace gr {

class BasicBlock;
class Function;
class Instruction;
class Value;

/// Forward dominator tree of one function.
class DomTree {
public:
  explicit DomTree(const Function &F);

  /// Immediate dominator, or null for the root.
  BasicBlock *getIDom(BasicBlock *BB) const;

  /// Reflexive dominance: A dominates A.
  bool dominates(BasicBlock *A, BasicBlock *B) const;
  bool strictlyDominates(BasicBlock *A, BasicBlock *B) const {
    return A != B && dominates(A, B);
  }

  /// Instruction-level dominance. A value dominates an instruction if
  /// it is a non-instruction (argument/constant/global) or its defining
  /// instruction strictly precedes the use position.
  bool dominates(const Value *Def, const Instruction *User) const;

  /// Dominance frontier of \p BB.
  const std::set<BasicBlock *> &getFrontier(BasicBlock *BB) const;

  /// Children of \p BB in the dominator tree.
  const std::vector<BasicBlock *> &getChildren(BasicBlock *BB) const;

  BasicBlock *getRoot() const { return Root; }

  /// Whether \p BB was reachable (and thus has tree data).
  bool contains(BasicBlock *BB) const { return IDom.count(BB) != 0; }

private:
  BasicBlock *Root;
  std::map<BasicBlock *, BasicBlock *> IDom;
  std::map<BasicBlock *, std::set<BasicBlock *>> Frontier;
  std::map<BasicBlock *, std::vector<BasicBlock *>> Children;
  std::vector<BasicBlock *> Empty;
  std::set<BasicBlock *> EmptySet;
};

/// Post-dominator tree. Handles multiple ret blocks through a virtual
/// exit node (represented by null).
class PostDomTree {
public:
  explicit PostDomTree(const Function &F);

  /// Immediate post-dominator, or null when the virtual exit is the
  /// immediate post-dominator.
  BasicBlock *getIPDom(BasicBlock *BB) const;

  /// Reflexive post-dominance.
  bool postDominates(BasicBlock *A, BasicBlock *B) const;
  bool strictlyPostDominates(BasicBlock *A, BasicBlock *B) const {
    return A != B && postDominates(A, B);
  }

  /// Post-dominance frontier of \p BB (the basis of control
  /// dependence).
  const std::set<BasicBlock *> &getFrontier(BasicBlock *BB) const;

  bool contains(BasicBlock *BB) const { return IPDom.count(BB) != 0; }

private:
  std::map<BasicBlock *, BasicBlock *> IPDom; // null value = virtual exit
  std::map<BasicBlock *, std::set<BasicBlock *>> Frontier;
  std::set<BasicBlock *> EmptySet;
};

} // namespace gr

#endif // GR_ANALYSIS_DOMINATORS_H
