//===- ControlDependence.cpp ----------------------------------*- C++ -*-===//

#include "analysis/ControlDependence.h"

#include "analysis/Dominators.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"

#include <algorithm>

using namespace gr;

ControlDependence::ControlDependence(const Function &F,
                                     const PostDomTree &PDT) {
  for (BasicBlock *BB : F)
    for (BasicBlock *Controller : PDT.getFrontier(BB))
      Controllers[BB].insert(Controller);
}

const std::set<BasicBlock *> &
ControlDependence::getControllers(BasicBlock *BB) const {
  auto It = Controllers.find(BB);
  return It == Controllers.end() ? EmptySet : It->second;
}

std::vector<Value *> ControlDependence::getControllingConditions(
    BasicBlock *BB, const std::set<BasicBlock *> *Region) const {
  std::vector<Value *> Conditions;
  std::set<BasicBlock *> Visited;
  std::vector<BasicBlock *> Worklist{BB};
  while (!Worklist.empty()) {
    BasicBlock *Current = Worklist.back();
    Worklist.pop_back();
    if (!Visited.insert(Current).second)
      continue;
    for (BasicBlock *Controller : getControllers(Current)) {
      if (Region && !Region->count(Controller))
        continue;
      auto *Br = dyn_cast_or_null<BranchInst>(Controller->getTerminator());
      if (Br && Br->isConditional() &&
          std::find(Conditions.begin(), Conditions.end(),
                    Br->getCondition()) == Conditions.end())
        Conditions.push_back(Br->getCondition());
      Worklist.push_back(Controller);
    }
  }
  return Conditions;
}
