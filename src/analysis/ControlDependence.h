//===- ControlDependence.h - CDG from post-dominance frontiers *- C++ -*-===//
///
/// \file
/// Control dependence: block A is control dependent on block B when B
/// has a conditional branch deciding whether A executes (B is in A's
/// post-dominance frontier). The reduction legality checks walk this
/// relation to ensure branch conditions only depend on allowed
/// origins.
///
//===----------------------------------------------------------------------===//

#ifndef GR_ANALYSIS_CONTROLDEPENDENCE_H
#define GR_ANALYSIS_CONTROLDEPENDENCE_H

#include <map>
#include <set>
#include <vector>

namespace gr {

class BasicBlock;
class Function;
class PostDomTree;
class Value;

/// Control dependence relation of one function.
class ControlDependence {
public:
  ControlDependence(const Function &F, const PostDomTree &PDT);

  /// Blocks whose branch decides execution of \p BB.
  const std::set<BasicBlock *> &getControllers(BasicBlock *BB) const;

  /// The branch conditions controlling \p BB, transitively closed
  /// while staying inside \p Region (pass null to close over the whole
  /// function). This is what the reduction spec checks against its
  /// allowed-origin set.
  std::vector<Value *>
  getControllingConditions(BasicBlock *BB,
                           const std::set<BasicBlock *> *Region) const;

private:
  std::map<BasicBlock *, std::set<BasicBlock *>> Controllers;
  std::set<BasicBlock *> EmptySet;
};

} // namespace gr

#endif // GR_ANALYSIS_CONTROLDEPENDENCE_H
