//===- CFGUtils.cpp -------------------------------------------*- C++ -*-===//

#include "analysis/CFGUtils.h"

#include "ir/BasicBlock.h"
#include "ir/Function.h"

#include <algorithm>

using namespace gr;

std::vector<BasicBlock *> gr::reversePostOrder(const Function &F) {
  std::vector<BasicBlock *> PostOrder;
  std::set<BasicBlock *> Visited;
  // Iterative DFS carrying an explicit successor cursor.
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  BasicBlock *Entry = F.getEntry();
  Visited.insert(Entry);
  Stack.push_back({Entry, 0});
  while (!Stack.empty()) {
    auto &[BB, Cursor] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (Cursor == Succs.size()) {
      PostOrder.push_back(BB);
      Stack.pop_back();
      continue;
    }
    BasicBlock *Next = Succs[Cursor++];
    if (Visited.insert(Next).second)
      Stack.push_back({Next, 0});
  }
  std::reverse(PostOrder.begin(), PostOrder.end());
  return PostOrder;
}

bool gr::reachableWithout(BasicBlock *From, BasicBlock *To,
                          const std::set<BasicBlock *> &Excluded) {
  std::set<BasicBlock *> Visited;
  std::vector<BasicBlock *> Worklist;
  for (BasicBlock *S : From->successors())
    Worklist.push_back(S);
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    if (BB == To)
      return true;
    if (Excluded.count(BB) || !Visited.insert(BB).second)
      continue;
    for (BasicBlock *S : BB->successors())
      Worklist.push_back(S);
  }
  return false;
}

std::set<BasicBlock *> gr::reachableBlocks(const Function &F) {
  std::set<BasicBlock *> Visited;
  std::vector<BasicBlock *> Worklist{F.getEntry()};
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    if (!Visited.insert(BB).second)
      continue;
    for (BasicBlock *S : BB->successors())
      Worklist.push_back(S);
  }
  return Visited;
}
