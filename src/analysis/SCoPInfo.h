//===- SCoPInfo.h - static control part detection -------------*- C++ -*-===//
///
/// \file
/// Polly-style SCoP detection: maximal loop nests with statically known
/// (affine) iteration spaces, affine memory subscripts, static control
/// flow and no calls. This is the substrate for the Polly+Reduction
/// baseline and the Fig 9/10/11 SCoP counts.
///
//===----------------------------------------------------------------------===//

#ifndef GR_ANALYSIS_SCOPINFO_H
#define GR_ANALYSIS_SCOPINFO_H

#include <vector>

namespace gr {

class Function;
class Loop;
class LoopInfo;

/// One detected static control part (rooted at an outermost qualifying
/// loop).
struct SCoP {
  Loop *Root;
  /// True when the SCoP contains a scalar reduction pattern
  /// (accumulator phi updated with an associative operator).
  bool HasReduction;
};

/// Finds all maximal SCoPs in \p F.
///
/// A loop nest qualifies when every loop in it has a canonical
/// induction variable with loop-invariant, affine bounds built only
/// from constants and function arguments; every load/store subscript
/// is affine over enclosing iterators and arguments; every branch
/// condition inside compares affine expressions; and no calls occur
/// anywhere in the nest.
std::vector<SCoP> findSCoPs(const Function &F, const LoopInfo &LI);

} // namespace gr

#endif // GR_ANALYSIS_SCOPINFO_H
