//===- LoopInfo.cpp -------------------------------------------*- C++ -*-===//

#include "analysis/LoopInfo.h"

#include "analysis/Dominators.h"
#include "ir/BasicBlock.h"
#include "ir/Function.h"
#include "ir/Instruction.h"

#include <algorithm>

using namespace gr;

bool Loop::contains(const Loop *Other) const {
  return Other && Blocks.count(Other->getHeader()) != 0;
}

unsigned Loop::getDepth() const {
  unsigned Depth = 1;
  for (Loop *P = Parent; P; P = P->Parent)
    ++Depth;
  return Depth;
}

std::vector<BasicBlock *> Loop::exitBlocks() const {
  std::vector<BasicBlock *> Exits;
  for (BasicBlock *BB : Blocks)
    for (BasicBlock *S : BB->successors())
      if (!contains(S) &&
          std::find(Exits.begin(), Exits.end(), S) == Exits.end())
        Exits.push_back(S);
  return Exits;
}

bool Loop::isInvariant(const Value *V) const {
  const auto *I = dyn_cast<Instruction>(V);
  if (!I)
    return true; // Constants, arguments, globals, functions, blocks.
  return !contains(I->getParent());
}

LoopInfo::LoopInfo(const Function &F, const DomTree &DT) {
  // Identify back edges; group them by header.
  std::map<BasicBlock *, std::vector<BasicBlock *>> BackEdges;
  for (BasicBlock *BB : F) {
    if (!DT.contains(BB))
      continue;
    for (BasicBlock *S : BB->successors())
      if (DT.dominates(S, BB))
        BackEdges[S].push_back(BB);
  }

  // Build one natural loop per header: all blocks that can reach a
  // latch without passing through the header.
  for (auto &[Header, Latches] : BackEdges) {
    auto L = std::make_unique<Loop>();
    L->Header = Header;
    L->Latch = Latches.size() == 1 ? Latches.front() : nullptr;
    L->Blocks.insert(Header);
    std::vector<BasicBlock *> Worklist(Latches.begin(), Latches.end());
    while (!Worklist.empty()) {
      BasicBlock *BB = Worklist.back();
      Worklist.pop_back();
      if (!L->Blocks.insert(BB).second)
        continue;
      for (BasicBlock *P : BB->predecessors())
        if (DT.contains(P))
          Worklist.push_back(P);
    }
    // Preheader: the unique predecessor outside the loop.
    BasicBlock *Pre = nullptr;
    bool Unique = true;
    for (BasicBlock *P : Header->predecessors()) {
      if (L->contains(P))
        continue;
      if (Pre)
        Unique = false;
      Pre = P;
    }
    L->Preheader = Unique ? Pre : nullptr;
    Loops.push_back(std::move(L));
  }

  // Establish nesting: parent = smallest strictly containing loop.
  for (auto &L : Loops) {
    Loop *Best = nullptr;
    for (auto &Candidate : Loops) {
      if (Candidate.get() == L.get() || !Candidate->contains(L.get()))
        continue;
      if (!Best || Best->blocks().size() > Candidate->blocks().size())
        Best = Candidate.get();
    }
    L->Parent = Best;
    if (Best)
      Best->SubLoops.push_back(L.get());
  }

  for (auto &L : Loops)
    analyzeInduction(*L);
}

void LoopInfo::analyzeInduction(Loop &L) {
  if (!L.Preheader || !L.Latch)
    return;
  for (PhiInst *Phi : L.Header->phis()) {
    if (Phi->getNumIncoming() != 2)
      continue;
    Value *Init = Phi->getIncomingValueFor(L.Preheader);
    Value *Next = Phi->getIncomingValueFor(L.Latch);
    if (!Init || !Next)
      continue;
    auto *Step = dyn_cast<BinaryInst>(Next);
    if (!Step || Step->getBinaryOp() != BinaryInst::BinaryOp::Add)
      continue;
    Value *StepAmount = nullptr;
    if (Step->getLHS() == Phi)
      StepAmount = Step->getRHS();
    else if (Step->getRHS() == Phi)
      StepAmount = Step->getLHS();
    if (!StepAmount || !L.isInvariant(StepAmount))
      continue;
    // Bound: the header must exit on a comparison against the phi.
    auto *Term = dyn_cast_or_null<BranchInst>(L.Header->getTerminator());
    Value *End = nullptr;
    if (Term && Term->isConditional()) {
      if (auto *Cmp = dyn_cast<CmpInst>(Term->getCondition())) {
        if (Cmp->getLHS() == Phi && L.isInvariant(Cmp->getRHS()))
          End = Cmp->getRHS();
        else if (Cmp->getRHS() == Phi && L.isInvariant(Cmp->getLHS()))
          End = Cmp->getLHS();
      }
    }
    L.Iterator = Phi;
    L.IterBegin = Init;
    L.IterStep = StepAmount;
    L.IterEnd = End;
    return;
  }
}

Loop *LoopInfo::getLoopFor(const BasicBlock *BB) const {
  Loop *Best = nullptr;
  for (const auto &L : Loops)
    if (L->contains(BB) &&
        (!Best || L->blocks().size() < Best->blocks().size()))
      Best = L.get();
  return Best;
}

std::vector<Loop *> LoopInfo::topLevelLoops() const {
  std::vector<Loop *> Result;
  for (const auto &L : Loops)
    if (!L->getParent())
      Result.push_back(L.get());
  return Result;
}

std::vector<Loop *> LoopInfo::loopsInnermostFirst() const {
  std::vector<Loop *> Result;
  for (const auto &L : Loops)
    Result.push_back(L.get());
  std::sort(Result.begin(), Result.end(), [](Loop *A, Loop *B) {
    return A->getDepth() > B->getDepth();
  });
  return Result;
}
