//===- Purity.h - side-effect classification of functions -----*- C++ -*-===//
///
/// \file
/// Classifies every function of a module by its effect on memory. The
/// reduction idioms accept calls inside the loop body only when the
/// callee is at least read-only; icc's baseline uses a narrower
/// whitelist (which is why it misses the fmin/fmax loops in cutcp).
///
//===----------------------------------------------------------------------===//

#ifndef GR_ANALYSIS_PURITY_H
#define GR_ANALYSIS_PURITY_H

#include <map>

namespace gr {

class Function;
class Module;

/// How a call can interact with program state.
enum class PurityKind {
  /// No memory access at all; result depends only on scalar arguments
  /// (sqrt, fabs, fmin, ...).
  StrictPure,
  /// No side effects, but may read memory through pointer arguments
  /// (e.g. a binary search helper).
  ReadOnly,
  /// Writes memory, reads/writes globals, or calls something impure.
  Impure,
};

/// Whole-module purity classification (bottom-up over calls; cyclic
/// call graphs degrade to Impure).
class PurityAnalysis {
public:
  explicit PurityAnalysis(const Module &M);

  PurityKind getKind(const Function *F) const;

  bool isStrictPure(const Function *F) const {
    return getKind(F) == PurityKind::StrictPure;
  }
  bool isSideEffectFree(const Function *F) const {
    return getKind(F) != PurityKind::Impure;
  }

private:
  PurityKind classify(const Function *F, int Depth);

  std::map<const Function *, PurityKind> Kinds;
};

} // namespace gr

#endif // GR_ANALYSIS_PURITY_H
