//===- Memory.cpp ---------------------------------------------*- C++ -*-===//

#include "interp/Memory.h"

#include "support/ErrorHandling.h"

using namespace gr;

uint64_t Memory::allocatePermanent(uint64_t Bytes) {
  if (Perm->Frozen)
    reportFatalError(
        "memory: permanent allocation during a parallel section");
  uint64_t Addr = Perm->Top;
  Perm->Top += (Bytes + 7) & ~uint64_t(7);
  if (Perm->Top > Perm->Data.size())
    Perm->Data.resize(Perm->Top * 2, 0);
  return Addr;
}

uint64_t Memory::allocateStack(uint64_t Bytes) {
  uint64_t Addr = StackTop;
  StackTop += (Bytes + 7) & ~uint64_t(7);
  if (StackTop > Stack.size())
    Stack.resize(StackTop * 2, 0);
  // Allocas are not guaranteed zeroed by C, but a deterministic value
  // keeps runs reproducible.
  for (uint64_t I = Addr; I < StackTop; ++I)
    Stack[I] = 0;
  return Addr | StackTag;
}
