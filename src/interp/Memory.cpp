//===- Memory.cpp ---------------------------------------------*- C++ -*-===//

#include "interp/Memory.h"

using namespace gr;

uint64_t Memory::allocatePermanent(uint64_t Bytes) {
  uint64_t Addr = PermanentTop;
  PermanentTop += (Bytes + 7) & ~uint64_t(7);
  if (PermanentTop > Permanent.size())
    Permanent.resize(PermanentTop * 2, 0);
  return Addr;
}

uint64_t Memory::allocateStack(uint64_t Bytes) {
  uint64_t Addr = StackTop;
  StackTop += (Bytes + 7) & ~uint64_t(7);
  if (StackTop > Stack.size())
    Stack.resize(StackTop * 2, 0);
  // Allocas are not guaranteed zeroed by C, but a deterministic value
  // keeps runs reproducible.
  for (uint64_t I = Addr; I < StackTop; ++I)
    Stack[I] = 0;
  return Addr | StackTag;
}
