//===- Memory.cpp ---------------------------------------------*- C++ -*-===//

#include "interp/Memory.h"

#include "support/Budget.h"
#include "support/ErrorHandling.h"
#include "support/FaultInjection.h"

using namespace gr;

namespace {

/// Budget/fault gate shared by both allocators, checked only when the
/// allocation would grow its backing buffer: a governed run that never
/// grows memory behaves bitwise like an ungoverned one.
void checkGrowth(uint64_t BytesUsed, uint64_t ByteLimit) {
  if (faults::shouldFail(faults::Site::VmMemGrow))
    throw BudgetError{ErrCode::Oom};
  if (ByteLimit && BytesUsed > ByteLimit)
    throw BudgetError{ErrCode::Oom};
}

} // namespace

uint64_t Memory::allocatePermanent(uint64_t Bytes) {
  if (Perm->Frozen)
    reportFatalError(
        "memory: permanent allocation during a parallel section");
  uint64_t Addr = Perm->Top;
  uint64_t NewTop = Perm->Top + ((Bytes + 7) & ~uint64_t(7));
  if (NewTop > Perm->Data.size()) {
    checkGrowth(NewTop + StackTop, ByteLimit);
    Perm->Data.resize(NewTop * 2, 0);
  }
  Perm->Top = NewTop;
  return Addr;
}

uint64_t Memory::allocateStack(uint64_t Bytes) {
  uint64_t Addr = StackTop;
  uint64_t NewTop = StackTop + ((Bytes + 7) & ~uint64_t(7));
  if (NewTop > Stack.size()) {
    checkGrowth(Perm->Top + NewTop, ByteLimit);
    Stack.resize(NewTop * 2, 0);
  }
  StackTop = NewTop;
  // Allocas are not guaranteed zeroed by C, but a deterministic value
  // keeps runs reproducible.
  for (uint64_t I = Addr; I < StackTop; ++I)
    Stack[I] = 0;
  return Addr | StackTag;
}
