//===- Bytecode.cpp -------------------------------------------*- C++ -*-===//

#include "interp/Bytecode.h"

#include "interp/Interpreter.h"
#include "ir/Function.h"
#include "ir/Module.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

using namespace gr;

//===----------------------------------------------------------------------===//
// ExecLayout
//===----------------------------------------------------------------------===//

ExecLayout::ExecLayout(const Module &M) {
  for (const auto &F : M.functions()) {
    FuncIds[F.get()] = static_cast<uint32_t>(Funcs.size());
    Funcs.push_back(F.get());
    for (const BasicBlock *BB : *F) {
      BlockIds[BB] = static_cast<uint32_t>(Blocks.size());
      Blocks.push_back(BB);
    }
  }
  // Globals keep module order: the interpreter allocates their storage
  // in id order, which reproduces the tree-walker's address layout.
  for (const auto &GV : M.globals()) {
    GlobalIds[GV.get()] = static_cast<uint32_t>(Globals.size());
    Globals.push_back(GV.get());
  }
}

//===----------------------------------------------------------------------===//
// Builtin table
//===----------------------------------------------------------------------===//

BuiltinId gr::lookupBuiltin(const std::string &Name) {
  if (Name == "sqrt") return BuiltinId::Sqrt;
  if (Name == "log") return BuiltinId::Log;
  if (Name == "exp") return BuiltinId::Exp;
  if (Name == "sin") return BuiltinId::Sin;
  if (Name == "cos") return BuiltinId::Cos;
  if (Name == "fabs") return BuiltinId::FAbs;
  if (Name == "floor") return BuiltinId::Floor;
  if (Name == "fmin") return BuiltinId::FMin;
  if (Name == "fmax") return BuiltinId::FMax;
  if (Name == "pow") return BuiltinId::Pow;
  if (Name == "imin") return BuiltinId::IMin;
  if (Name == "imax") return BuiltinId::IMax;
  if (Name == "print_i64") return BuiltinId::PrintI64;
  if (Name == "print_f64") return BuiltinId::PrintF64;
  if (Name == "gr_rand") return BuiltinId::GrRand;
  if (Name == "gr_rand_seed") return BuiltinId::GrRandSeed;
  return BuiltinId::None;
}

//===----------------------------------------------------------------------===//
// BytecodeCompiler
//===----------------------------------------------------------------------===//

namespace {

Opcode opcodeForBinary(BinaryInst::BinaryOp Op) {
  using B = BinaryInst::BinaryOp;
  switch (Op) {
  case B::Add: return Opcode::AddI;
  case B::Sub: return Opcode::SubI;
  case B::Mul: return Opcode::MulI;
  case B::SDiv: return Opcode::SDivI;
  case B::SRem: return Opcode::SRemI;
  case B::FAdd: return Opcode::FAdd;
  case B::FSub: return Opcode::FSub;
  case B::FMul: return Opcode::FMul;
  case B::FDiv: return Opcode::FDiv;
  case B::And: return Opcode::AndI;
  case B::Or: return Opcode::OrI;
  case B::Xor: return Opcode::XorI;
  case B::Shl: return Opcode::ShlI;
  case B::AShr: return Opcode::AShrI;
  }
  return Opcode::AddI;
}

Opcode opcodeForCmp(CmpInst::Predicate Pred) {
  using P = CmpInst::Predicate;
  switch (Pred) {
  case P::EQ: return Opcode::CmpEQ;
  case P::NE: return Opcode::CmpNE;
  case P::SLT: return Opcode::CmpSLT;
  case P::SLE: return Opcode::CmpSLE;
  case P::SGT: return Opcode::CmpSGT;
  case P::SGE: return Opcode::CmpSGE;
  case P::OEQ: return Opcode::CmpOEQ;
  case P::ONE: return Opcode::CmpONE;
  case P::OLT: return Opcode::CmpOLT;
  case P::OLE: return Opcode::CmpOLE;
  case P::OGT: return Opcode::CmpOGT;
  case P::OGE: return Opcode::CmpOGE;
  }
  return Opcode::CmpEQ;
}

/// Leading phis of \p BB — exactly the ones the tree-walker commits
/// with simultaneous-assignment semantics. A phi *after* a non-phi is
/// malformed and compiles to a Fault instead.
std::vector<const PhiInst *> leadingPhis(const BasicBlock *BB) {
  std::vector<const PhiInst *> Out;
  for (Instruction *I : *BB) {
    auto *Phi = dyn_cast<PhiInst>(I);
    if (!Phi)
      break;
    Out.push_back(Phi);
  }
  return Out;
}

} // namespace

BytecodeFunction BytecodeCompiler::compile(const Function &F) const {
  BytecodeFunction BF;
  BF.NumArgs = F.getNumArgs();

  std::unordered_map<const Value *, uint32_t> RegOf;

  // Pass A: collect constant operands (integer/float constants and
  // global addresses) into the constant pool, deduped by uniqued
  // Value pointer. Resolving them to plain registers here is what
  // removes every per-operand kind test from the dispatch loop.
  auto addConst = [&](const Value *V) {
    if (RegOf.count(V))
      return;
    ConstDesc D;
    if (const auto *CI = dyn_cast<ConstantInt>(V)) {
      D.K = ConstDesc::Int;
      D.Bits = static_cast<uint64_t>(CI->getValue());
    } else if (const auto *CF = dyn_cast<ConstantFloat>(V)) {
      D.K = ConstDesc::Float;
      double Val = CF->getValue();
      std::memcpy(&D.Bits, &Val, 8);
    } else if (const auto *GV = dyn_cast<GlobalVariable>(V)) {
      D.K = ConstDesc::GlobalAddr;
      D.Bits = Layout.globalId(GV);
    } else {
      return;
    }
    RegOf[V] = static_cast<uint32_t>(BF.Consts.size());
    BF.Consts.push_back(D);
  };
  for (const BasicBlock *BB : F)
    for (Instruction *I : *BB) {
      unsigned Begin = isa<CallInst>(I) ? 1 : 0; // Skip the callee.
      for (unsigned Op = Begin, E = I->getNumOperands(); Op != E; ++Op)
        addConst(I->getOperand(Op));
    }
  BF.NumConsts = static_cast<uint32_t>(BF.Consts.size());

  // Arguments follow the constant pool.
  for (unsigned I = 0, E = F.getNumArgs(); I != E; ++I)
    RegOf[F.getArg(I)] = BF.NumConsts + I;

  // Result registers for every value-producing instruction (calls to
  // void functions included, mirroring the tree-walker's Frame[I]).
  uint32_t NextReg = BF.NumConsts + BF.NumArgs;
  for (const BasicBlock *BB : F)
    for (Instruction *I : *BB)
      switch (I->getKind()) {
      case Value::ValueKind::InstStore:
      case Value::ValueKind::InstBranch:
      case Value::ValueKind::InstRet:
        break;
      default:
        RegOf[I] = NextReg++;
        break;
      }
  BF.NumRegs = NextReg;

  // A resolved operand register, or emit-a-fault sentinel: the
  // tree-walker reports "use of value with no definition" only when
  // the use executes, so unresolvable operands lower to Fault ops.
  constexpr uint32_t NoReg = ~0u;
  auto regOf = [&](const Value *V) -> uint32_t {
    auto It = RegOf.find(V);
    return It == RegOf.end() ? NoReg : It->second;
  };

  // Pass B: emit straight-line code per block. Branches allocate Edge
  // records whose targets are pcs, resolved in pass C below.
  std::unordered_map<const BasicBlock *, uint32_t> FirstPC;
  struct PendingEdge {
    const BasicBlock *Src;
    const BasicBlock *Tgt;
  };
  std::vector<PendingEdge> Pending;

  auto emit = [&](Opcode Op, uint32_t Dst, uint32_t A = 0, uint32_t B = 0,
                  uint32_t C = 0) {
    BF.Code.push_back(BCInst{Op, FaultKind::PhiNoEntry, Dst, A, B, C, 0});
  };
  auto emitFault = [&](FaultKind Fk) {
    BF.Code.push_back(BCInst{Opcode::Fault, Fk, 0, 0, 0, 0, 0});
  };
  // Emits Fault if any listed operand register is unresolved.
  auto operandsOk = [&](std::initializer_list<uint32_t> Regs) {
    for (uint32_t R : Regs)
      if (R == NoReg) {
        emitFault(FaultKind::NoDefinition);
        return false;
      }
    return true;
  };

  for (const BasicBlock *BB : F) {
    size_t NumPhis = leadingPhis(BB).size();
    FirstPC[BB] = static_cast<uint32_t>(BF.Code.size());
    bool Terminated = false;
    size_t Pos = 0;
    for (Instruction *I : *BB) {
      if (Pos++ < NumPhis)
        continue; // Leading phis become edge moves.
      if (Terminated)
        break; // Code after a terminator never runs in the walker.
      switch (I->getKind()) {
      case Value::ValueKind::InstBinary: {
        auto *Bin = cast<BinaryInst>(I);
        uint32_t L = regOf(Bin->getLHS()), R = regOf(Bin->getRHS());
        if (operandsOk({L, R}))
          emit(opcodeForBinary(Bin->getBinaryOp()), RegOf[I], L, R);
        break;
      }
      case Value::ValueKind::InstCmp: {
        auto *Cmp = cast<CmpInst>(I);
        uint32_t L = regOf(Cmp->getLHS()), R = regOf(Cmp->getRHS());
        if (operandsOk({L, R}))
          emit(opcodeForCmp(Cmp->getPredicate()), RegOf[I], L, R);
        break;
      }
      case Value::ValueKind::InstCast: {
        auto *Cast = gr::cast<CastInst>(I);
        uint32_t S = regOf(Cast->getSrc());
        if (!operandsOk({S}))
          break;
        switch (Cast->getCastKind()) {
        case CastInst::CastKind::SIToFP:
          emit(Opcode::SIToFP, RegOf[I], S);
          break;
        case CastInst::CastKind::FPToSI:
          emit(Opcode::FPToSI, RegOf[I], S);
          break;
        case CastInst::CastKind::ZExt:
        case CastInst::CastKind::Trunc:
          emit(Opcode::Bit1, RegOf[I], S);
          break;
        }
        break;
      }
      case Value::ValueKind::InstAlloca: {
        auto *AI = cast<AllocaInst>(I);
        uint64_t Bytes = AI->getAllocatedType()->getSizeInBytes();
        emit(Opcode::Alloca, RegOf[I], static_cast<uint32_t>(Bytes),
             static_cast<uint32_t>(Bytes >> 32));
        break;
      }
      case Value::ValueKind::InstLoad: {
        auto *Load = cast<LoadInst>(I);
        uint32_t P = regOf(Load->getPointer());
        if (operandsOk({P}))
          emit(Opcode::Load, RegOf[I], P);
        break;
      }
      case Value::ValueKind::InstStore: {
        auto *Store = cast<StoreInst>(I);
        uint32_t V = regOf(Store->getStoredValue());
        uint32_t P = regOf(Store->getPointer());
        if (operandsOk({V, P}))
          emit(Opcode::Store, 0, V, P);
        break;
      }
      case Value::ValueKind::InstGEP: {
        auto *GEP = cast<GEPInst>(I);
        uint32_t Base = regOf(GEP->getPointer());
        uint32_t Index = regOf(GEP->getIndex());
        if (operandsOk({Base, Index}))
          emit(Opcode::Gep, RegOf[I], Base, Index,
               static_cast<uint32_t>(
                   GEP->getElementType()->getSizeInBytes()));
        break;
      }
      case Value::ValueKind::InstCall: {
        auto *Call = cast<CallInst>(I);
        Function *Callee = Call->getCallee();
        uint32_t ArgOff = static_cast<uint32_t>(BF.ArgPool.size());
        uint32_t NumArgs = Call->getNumArgs();
        bool Ok = true;
        for (unsigned A = 0; A != NumArgs; ++A) {
          uint32_t R = regOf(Call->getArg(A));
          if (R == NoReg)
            Ok = false;
          BF.ArgPool.push_back(R);
        }
        if (!Ok) {
          BF.ArgPool.resize(ArgOff);
          emitFault(FaultKind::NoDefinition);
          break;
        }
        if (!Callee->isDeclaration()) {
          emit(Opcode::Call, RegOf[I], Layout.functionId(Callee), ArgOff,
               NumArgs);
        } else if (startsWith(Callee->getName(), "__gr_")) {
          uint32_t Site = static_cast<uint32_t>(BF.IntrinsicSites.size());
          BF.IntrinsicSites.push_back(Call);
          emit(Opcode::CallIntrinsic, RegOf[I], Site, ArgOff, NumArgs);
        } else {
          BuiltinId Id = lookupBuiltin(Callee->getName());
          if (Id == BuiltinId::None)
            emitFault(FaultKind::UnknownExtern);
          else
            emit(Opcode::CallBuiltin, RegOf[I], static_cast<uint32_t>(Id),
                 ArgOff, NumArgs);
        }
        break;
      }
      case Value::ValueKind::InstSelect: {
        auto *Sel = cast<SelectInst>(I);
        uint32_t C = regOf(Sel->getCondition());
        uint32_t T = regOf(Sel->getTrueValue());
        uint32_t Fv = regOf(Sel->getFalseValue());
        if (operandsOk({C, T, Fv}))
          emit(Opcode::Select, RegOf[I], C, T, Fv);
        break;
      }
      case Value::ValueKind::InstBranch: {
        auto *Br = cast<BranchInst>(I);
        uint32_t EdgeBase = static_cast<uint32_t>(BF.Edges.size());
        for (unsigned S = 0, E = Br->getNumSuccessors(); S != E; ++S) {
          BF.Edges.emplace_back();
          Pending.push_back({BB, Br->getSuccessor(S)});
        }
        if (Br->isConditional()) {
          uint32_t C = regOf(Br->getCondition());
          if (operandsOk({C}))
            emit(Opcode::CondBr, 0, C, EdgeBase, EdgeBase + 1);
        } else {
          emit(Opcode::Br, 0, EdgeBase);
        }
        Terminated = true;
        break;
      }
      case Value::ValueKind::InstRet: {
        auto *Ret = cast<RetInst>(I);
        if (Ret->hasReturnValue()) {
          uint32_t R = regOf(Ret->getReturnValue());
          if (operandsOk({R}))
            emit(Opcode::Ret, 0, R);
        } else {
          emit(Opcode::RetVoid, 0);
        }
        Terminated = true;
        break;
      }
      case Value::ValueKind::InstPhi:
        // A phi below a non-phi: the tree-walker's switch has no case
        // for it and dies on gr_unreachable.
        emitFault(FaultKind::BadInst);
        Terminated = true;
        break;
      default:
        emitFault(FaultKind::BadInst);
        Terminated = true;
        break;
      }
    }
    if (!Terminated)
      emitFault(FaultKind::NoTerminator);
  }

  // Pass C: resolve edges — target pc, dense target-block id, and the
  // phi parallel-move list the edge carries.
  for (size_t E = 0; E != BF.Edges.size(); ++E) {
    Edge &Ed = BF.Edges[E];
    const BasicBlock *Src = Pending[E].Src;
    const BasicBlock *Tgt = Pending[E].Tgt;
    Ed.TargetPC = FirstPC[Tgt];
    Ed.TargetBlock = Layout.blockId(Tgt);
    Ed.MoveOff = static_cast<uint32_t>(BF.Moves.size());
    for (const PhiInst *Phi : leadingPhis(Tgt)) {
      Value *In = Phi->getIncomingValueFor(Src);
      if (!In) {
        Ed.Fault = true;
        Ed.Fk = FaultKind::PhiNoEntry;
        break;
      }
      uint32_t SrcReg = regOf(In);
      if (SrcReg == NoReg) {
        Ed.Fault = true;
        Ed.Fk = FaultKind::NoDefinition;
        break;
      }
      BF.Moves.push_back(RegMove{RegOf[Phi], SrcReg});
    }
    if (Ed.Fault)
      BF.Moves.resize(Ed.MoveOff);
    Ed.MoveCount = static_cast<uint32_t>(BF.Moves.size()) - Ed.MoveOff;
  }

  BF.EntryPC = FirstPC[F.getEntry()];
  BF.EntryBlock = Layout.blockId(F.getEntry());
  BF.EntryFault = !leadingPhis(F.getEntry()).empty();
  return BF;
}

//===----------------------------------------------------------------------===//
// Superinstruction peephole
//===----------------------------------------------------------------------===//
//
// The fusion table: hot adjacent opcode pairs mined from corpus
// ExecProfile data (dynamic pair frequencies over the 40-program
// corpus, dominated by counted-loop back edges and array reductions):
//
//   pair                      dynamic share   fused opcode
//   Cmp{pred} + CondBr        ~19%            Cmp{pred}Br
//   Gep + Load (8-byte elt)   ~11%            GepLoad
//   AddI + Br (loop latch)    ~8%             AddIBr
//   Load + AddI               ~7%             LoadAddI
//   AddI + Store              ~5%             AddIStore
//   Gep + Store (8-byte elt)  ~4%             GepStore
//   FMul + FAdd               ~4%             FMulFAdd
//   Load + FAdd               ~4%             LoadFAdd
//   SIToFP + FMul             ~3%             SIToFPFMul
//   MulI + SRemI              ~3%             MulISRemI
//   FAdd + FSub               ~2%             FAddFSub
//
// A pair fuses only when the value flows first→second through the
// expected register, the second instruction is not a jump target
// (branch targets are always block heads, so intra-block adjacency is
// sufficient), and — for Gep pairs — the element size is 8, the only
// size the fused addressing mode encodes. Both destination registers
// are still written, so later uses of the intermediate value observe
// it; the VM charges two instruction-counter steps per fused opcode,
// keeping ExecProfile bitwise identical to unfused execution.

namespace {

/// Fused Cmp+CondBr opcode for \p Cmp, or Opcode::Fault when \p Cmp is
/// not a comparison.
Opcode fusedCmpBr(Opcode Cmp) {
  switch (Cmp) {
  case Opcode::CmpEQ: return Opcode::CmpEQBr;
  case Opcode::CmpNE: return Opcode::CmpNEBr;
  case Opcode::CmpSLT: return Opcode::CmpSLTBr;
  case Opcode::CmpSLE: return Opcode::CmpSLEBr;
  case Opcode::CmpSGT: return Opcode::CmpSGTBr;
  case Opcode::CmpSGE: return Opcode::CmpSGEBr;
  case Opcode::CmpOEQ: return Opcode::CmpOEQBr;
  case Opcode::CmpONE: return Opcode::CmpONEBr;
  case Opcode::CmpOLT: return Opcode::CmpOLTBr;
  case Opcode::CmpOLE: return Opcode::CmpOLEBr;
  case Opcode::CmpOGT: return Opcode::CmpOGTBr;
  case Opcode::CmpOGE: return Opcode::CmpOGEBr;
  default: return Opcode::Fault;
  }
}

/// Attempts to fuse the adjacent pair (\p A, \p B); returns true and
/// fills \p Out on a table hit.
bool fusePair(const BCInst &A, const BCInst &B, BCInst &Out) {
  Out = A;
  // Cmp{pred} + CondBr on the comparison result. The compiler
  // allocates a conditional branch's edges consecutively; encode the
  // base and let the handler pick base / base+1.
  Opcode CmpBr = fusedCmpBr(A.Op);
  if (CmpBr != Opcode::Fault && B.Op == Opcode::CondBr && B.A == A.Dst &&
      B.C == B.B + 1) {
    Out.Op = CmpBr;
    Out.C = B.B;
    return true;
  }
  // Load + AddI consuming the loaded value (commutative, either side).
  if (A.Op == Opcode::Load && B.Op == Opcode::AddI &&
      (B.A == A.Dst || B.B == A.Dst)) {
    Out.Op = Opcode::LoadAddI;
    Out.Dst = B.Dst;
    Out.B = B.A == A.Dst ? B.B : B.A;
    Out.C = A.Dst;
    return true;
  }
  // Load + FAdd of the loaded bits (commutative, either side).
  if (A.Op == Opcode::Load && B.Op == Opcode::FAdd &&
      (B.A == A.Dst || B.B == A.Dst)) {
    Out.Op = Opcode::LoadFAdd;
    Out.Dst = B.Dst;
    Out.B = B.A == A.Dst ? B.B : B.A;
    Out.C = A.Dst;
    return true;
  }
  // SIToFP + FMul of the converted value (commutative, either side).
  if (A.Op == Opcode::SIToFP && B.Op == Opcode::FMul &&
      (B.A == A.Dst || B.B == A.Dst)) {
    Out.Op = Opcode::SIToFPFMul;
    Out.Dst = B.Dst;
    Out.B = B.A == A.Dst ? B.B : B.A;
    Out.C = A.Dst;
    return true;
  }
  // FMul + FAdd accumulating the product (commutative, either side).
  // The product's own destination survives in the fifth field.
  if (A.Op == Opcode::FMul && B.Op == Opcode::FAdd &&
      (B.A == A.Dst || B.B == A.Dst)) {
    Out.Op = Opcode::FMulFAdd;
    Out.Dst = B.Dst;
    Out.C = B.A == A.Dst ? B.B : B.A;
    Out.E = A.Dst;
    return true;
  }
  // MulI + SRemI of the product (the hashed-index pattern k = (i*c)%m;
  // srem is not commutative — only the dividend side fuses).
  if (A.Op == Opcode::MulI && B.Op == Opcode::SRemI && B.A == A.Dst) {
    Out.Op = Opcode::MulISRemI;
    Out.Dst = B.Dst;
    Out.C = B.B;
    Out.E = A.Dst;
    return true;
  }
  // FAdd + FSub of the sum (only the minuend side — FSub is not
  // commutative).
  if (A.Op == Opcode::FAdd && B.Op == Opcode::FSub && B.A == A.Dst) {
    Out.Op = Opcode::FAddFSub;
    Out.Dst = B.Dst;
    Out.C = B.B;
    Out.E = A.Dst;
    return true;
  }
  // AddI + Br: the counted-loop latch (increment, then the back edge).
  // Br reads nothing, so no dataflow condition applies.
  if (A.Op == Opcode::AddI && B.Op == Opcode::Br) {
    Out.Op = Opcode::AddIBr;
    Out.C = B.A;
    return true;
  }
  // AddI + Store of the sum.
  if (A.Op == Opcode::AddI && B.Op == Opcode::Store && B.A == A.Dst) {
    Out.Op = Opcode::AddIStore;
    Out.C = B.B;
    return true;
  }
  // Gep + Load/Store through the computed address; only the 8-byte
  // element size fits the fused encoding (C carries a register).
  if (A.Op == Opcode::Gep && A.C == 8) {
    if (B.Op == Opcode::Load && B.A == A.Dst) {
      Out.Op = Opcode::GepLoad;
      Out.Dst = B.Dst;
      Out.C = A.Dst;
      return true;
    }
    if (B.Op == Opcode::Store && B.B == A.Dst) {
      Out.Op = Opcode::GepStore;
      Out.C = B.A;
      return true;
    }
  }
  return false;
}

} // namespace

uint64_t BytecodeCompiler::fuseSuperinstructions(BytecodeFunction &BF) {
  // Jump targets are block heads: edge targets plus the entry pc. A
  // call's resume point (the instruction after it) needs no entry here
  // because calls never fuse, so the successor survives as the head of
  // its own (possibly fused) instruction.
  std::unordered_set<uint32_t> Targets;
  Targets.insert(BF.EntryPC);
  for (const Edge &E : BF.Edges)
    Targets.insert(E.TargetPC);

  const size_t N = BF.Code.size();
  std::vector<BCInst> NewCode;
  NewCode.reserve(N);
  std::vector<uint32_t> PCMap(N + 1, 0);
  uint64_t Pairs = 0;

  for (size_t I = 0; I != N;) {
    PCMap[I] = static_cast<uint32_t>(NewCode.size());
    BCInst Fused;
    if (I + 1 != N && !Targets.count(static_cast<uint32_t>(I + 1)) &&
        fusePair(BF.Code[I], BF.Code[I + 1], Fused)) {
      // The consumed second half maps to the fused op: nothing jumps
      // there (checked above), the entry is defensive.
      PCMap[I + 1] = static_cast<uint32_t>(NewCode.size());
      NewCode.push_back(Fused);
      ++Pairs;
      I += 2;
    } else {
      NewCode.push_back(BF.Code[I]);
      ++I;
    }
  }
  PCMap[N] = static_cast<uint32_t>(NewCode.size());

  if (!Pairs)
    return 0;
  BF.Code = std::move(NewCode);
  BF.EntryPC = PCMap[BF.EntryPC];
  for (Edge &E : BF.Edges)
    E.TargetPC = PCMap[E.TargetPC];
  return Pairs;
}

//===----------------------------------------------------------------------===//
// BytecodeModule
//===----------------------------------------------------------------------===//

BytecodeModule::BytecodeModule(const Module &M, bool EnableFusion)
    : Layout(M), Fused(EnableFusion) {
  BytecodeCompiler Compiler(Layout);
  Funcs.resize(Layout.numFunctions());
  for (uint32_t Id = 0; Id != Layout.numFunctions(); ++Id) {
    const Function *F = Layout.functionAt(Id);
    if (F->isDeclaration())
      continue;
    Funcs[Id] = Compiler.compile(*F);
    if (EnableFusion)
      FusedPairs += BytecodeCompiler::fuseSuperinstructions(Funcs[Id]);
    for (const Edge &E : Funcs[Id].Edges)
      MaxEdgeMoves = std::max(MaxEdgeMoves, E.MoveCount);
    for (const BCInst &I : Funcs[Id].Code)
      if (I.Op == Opcode::Call || I.Op == Opcode::CallBuiltin ||
          I.Op == Opcode::CallIntrinsic)
        MaxCallArgs = std::max(MaxCallArgs, I.C);
  }

  // Resolve the global-stream flags transitively: a function touches
  // the rand/output streams when it calls gr_rand/gr_rand_seed or a
  // print builtin directly, or calls a function that does. Iterate to
  // a fixed point (call graphs here are tiny).
  StreamFlags.assign(Layout.numFunctions(), false);
  for (uint32_t Id = 0; Id != Layout.numFunctions(); ++Id)
    for (const BCInst &I : Funcs[Id].Code)
      if (I.Op == Opcode::CallBuiltin) {
        BuiltinId B = static_cast<BuiltinId>(I.A);
        if (B == BuiltinId::GrRand || B == BuiltinId::GrRandSeed ||
            B == BuiltinId::PrintI64 || B == BuiltinId::PrintF64)
          StreamFlags[Id] = true;
      }
  for (bool Changed = true; Changed;) {
    Changed = false;
    for (uint32_t Id = 0; Id != Layout.numFunctions(); ++Id) {
      if (StreamFlags[Id])
        continue;
      for (const BCInst &I : Funcs[Id].Code)
        if (I.Op == Opcode::Call && StreamFlags[I.A]) {
          StreamFlags[Id] = true;
          Changed = true;
          break;
        }
    }
  }
}

bool BytecodeModule::touchesGlobalStream(uint32_t FuncId) const {
  return StreamFlags[FuncId];
}

std::shared_ptr<const BytecodeModule>
BytecodeModule::compile(const Module &M) {
  return compile(M, resolveDispatchMode(DispatchMode::Default) ==
                        DispatchMode::Fused);
}

std::shared_ptr<const BytecodeModule>
BytecodeModule::compile(const Module &M, bool EnableFusion) {
  return std::shared_ptr<const BytecodeModule>(
      new BytecodeModule(M, EnableFusion));
}
