//===- VM.h - register-based bytecode virtual machine ---------*- C++ -*-===//
///
/// \file
/// The production execution engine: an iterative dispatch loop over
/// the compiled bytecode stream (Bytecode.h). Frames are flat Slot
/// arrays carved out of one reusable register stack — internal calls
/// push a frame record instead of recursing, argument passing is a
/// register-to-register copy, and the per-edge phi moves run out of a
/// preallocated scratch arena, so steady-state execution performs no
/// allocations (mirroring SolverEngine's scratch arenas). The
/// instruction counter lives in a register and is flushed to the
/// ExecProfile at call boundaries, intrinsic dispatch and exits;
/// per-block counters are bumped through the dense ExecLayout ids, so
/// the profile stays bitwise identical to the reference tree-walker's.
///
//===----------------------------------------------------------------------===//

#ifndef GR_INTERP_VM_H
#define GR_INTERP_VM_H

#include "interp/Bytecode.h"
#include "interp/Interpreter.h"

#include <cstdint>
#include <vector>

namespace gr {

/// One virtual machine instance, bound to an Interpreter facade (which
/// owns memory, output, the rand stream and the profile) and a
/// compiled module. Re-entrant: intrinsic handlers may call back into
/// Interpreter::call, which stacks another run on the same arenas.
///
/// Dispatch is tiered (DispatchMode): the portable switch loop and a
/// direct-threaded computed-goto loop are two instantiations of the
/// same handler bodies (VMExec.inc), so their execution semantics —
/// including the instruction counter and per-block profile — cannot
/// diverge. Superinstructions are a codegen concern (Bytecode.cpp's
/// peephole); both loops carry handlers for them.
class VM {
public:
  VM(Interpreter &Host, const BytecodeModule &BC);

  /// Runs function \p FuncId with \p NumArgs arguments on the dispatch
  /// loop the host's DispatchMode selects.
  Slot call(uint32_t FuncId, const Slot *Args, uint32_t NumArgs);

private:
  /// The dispatch loop, instantiated twice from VMExec.inc. The goto
  /// variant forwards to the switch variant on toolchains without the
  /// label-address extension (dispatchHasComputedGoto()).
  Slot callSwitch(uint32_t FuncId, const Slot *Args, uint32_t NumArgs);
  Slot callGoto(uint32_t FuncId, const Slot *Args, uint32_t NumArgs);

  /// One active call. PC is the saved resume point while callees run.
  struct FrameRec {
    uint32_t FuncId;
    uint32_t PC;
    uint32_t RegBase;
    /// Absolute register-stack index receiving the return value; ~0u
    /// for the root frame of a VM::call invocation.
    uint32_t RetRegAbs;
    uint64_t StackMark;
  };

  /// Grows the register stack to at least \p Needed slots.
  void ensureRegs(uint32_t Needed) {
    if (RegStack.size() < Needed)
      RegStack.resize(std::max<size_t>(Needed, RegStack.size() * 2));
  }

  const Slot *constTemplate(uint32_t FuncId) const {
    return ConstSlots.data() + ConstOffsets[FuncId];
  }

  /// Flushes the in-register instruction counter and aborts.
  [[noreturn]] void fail(const char *Msg, uint64_t ICount);
  [[noreturn]] void failFault(FaultKind Fk, uint64_t ICount);

  /// The armed step-limit the dispatch loop compares against: the
  /// host's legacy StepLimit, tightened by the attached budget's VM
  /// step ceiling and — when a deadline is set — a polling chunk, so
  /// the loop reaches budgetCheckpoint() every ~64k instructions
  /// without adding any per-step work.
  uint64_t effectiveLimit(uint64_t ICount) const;

  /// Slow path behind the dispatch loop's `ICount > Limit` check.
  /// Legacy StepLimit overruns abort exactly as before; budget
  /// ceilings flush the counter and throw BudgetError; a mere polling
  /// chunk boundary re-checks the deadline and returns the next armed
  /// limit.
  uint64_t budgetCheckpoint(uint64_t ICount);

  Interpreter &Host;
  const BytecodeModule &BC;
  std::vector<Slot> RegStack;
  std::vector<FrameRec> Frames;
  /// Scratch for simultaneous phi-move assignment, sized to the
  /// largest move list in the module.
  std::vector<Slot> MoveScratch;
  /// Per-interpreter instantiation of every function's constant pool
  /// (global addresses depend on this interpreter's memory), flattened
  /// with per-function offsets; memcpy'd into each new frame.
  std::vector<Slot> ConstSlots;
  std::vector<uint32_t> ConstOffsets;
  uint32_t RegTop = 0;
  /// Selected at construction from the host's resolved DispatchMode:
  /// Goto/Fused run the computed-goto loop when the build has one.
  bool UseGoto = false;
};

} // namespace gr

#endif // GR_INTERP_VM_H
