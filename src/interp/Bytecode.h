//===- Bytecode.h - IR-to-bytecode compilation layer ----------*- C++ -*-===//
///
/// \file
/// The execution substrate's compile-then-run split, mirroring the
/// constraint solver's FormulaCompiler/SolverEngine pair: a
/// BytecodeCompiler lowers each Function once into a BytecodeFunction
/// (dense virtual registers for every SSA value, operands resolved to
/// register indices at compile time, phi nodes precompiled into
/// per-edge parallel-move lists, branch targets as instruction
/// offsets), and the register VM (VM.h) dispatches over the flat
/// stream. The ExecLayout assigns module-wide dense ids to blocks,
/// globals and functions; both engines count into the same dense
/// ExecProfile through it, so profiles stay bitwise comparable.
///
//===----------------------------------------------------------------------===//

#ifndef GR_INTERP_BYTECODE_H
#define GR_INTERP_BYTECODE_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace gr {

class BasicBlock;
class CallInst;
class Function;
class GlobalVariable;
class Module;

/// Module-wide dense numbering of blocks, globals and functions.
/// Built once per module and shared by both execution engines: block
/// ids index the flat ExecProfile::BlockCounts array, global ids index
/// the interpreter's dense global-address table, function ids index
/// the compiled BytecodeFunction array.
class ExecLayout {
public:
  explicit ExecLayout(const Module &M);

  uint32_t numBlocks() const {
    return static_cast<uint32_t>(Blocks.size());
  }
  const BasicBlock *blockAt(uint32_t Id) const { return Blocks[Id]; }
  /// Dense id of \p BB, or ~0u when the block is not part of the
  /// module this layout was built from.
  uint32_t blockId(const BasicBlock *BB) const {
    auto It = BlockIds.find(BB);
    return It == BlockIds.end() ? ~0u : It->second;
  }

  uint32_t numGlobals() const {
    return static_cast<uint32_t>(Globals.size());
  }
  const GlobalVariable *globalAt(uint32_t Id) const { return Globals[Id]; }
  uint32_t globalId(const GlobalVariable *GV) const {
    auto It = GlobalIds.find(GV);
    return It == GlobalIds.end() ? ~0u : It->second;
  }

  uint32_t numFunctions() const {
    return static_cast<uint32_t>(Funcs.size());
  }
  Function *functionAt(uint32_t Id) const { return Funcs[Id]; }
  uint32_t functionId(const Function *F) const {
    auto It = FuncIds.find(F);
    return It == FuncIds.end() ? ~0u : It->second;
  }

private:
  std::vector<const BasicBlock *> Blocks;
  std::unordered_map<const BasicBlock *, uint32_t> BlockIds;
  std::vector<const GlobalVariable *> Globals;
  std::unordered_map<const GlobalVariable *, uint32_t> GlobalIds;
  std::vector<Function *> Funcs;
  std::unordered_map<const Function *, uint32_t> FuncIds;
};

/// X-macro over every register-VM opcode, in dispatch order. The
/// computed-goto label table in the VM's dispatch loop (VMExec.inc) is
/// generated from this same list, which keeps the enum values and the
/// label array in lockstep by construction — adding an opcode anywhere
/// in the list updates both.
///
/// Binary operators, comparison predicates and casts are expanded into
/// distinct opcodes so dispatch does the full decode; there is no
/// secondary sub-op branch.
///
/// The trailing block is the superinstruction tier: fused opcode pairs
/// selected from corpus ExecProfile data (see the fusion table in
/// Bytecode.cpp). They are emitted only by the peephole pass behind
/// GR_DISPATCH=fused; both dispatch loops can execute them.
#define GR_OPCODE_LIST(X)                                                     \
  /* Integer / float arithmetic and bitwise ops: Dst = A op B. */             \
  X(AddI) X(SubI) X(MulI) X(SDivI) X(SRemI)                                   \
  X(FAdd) X(FSub) X(FMul) X(FDiv)                                             \
  X(AndI) X(OrI) X(XorI) X(ShlI) X(AShrI)                                     \
  /* Comparisons: Dst = (A pred B) ? 1 : 0. */                                \
  X(CmpEQ) X(CmpNE) X(CmpSLT) X(CmpSLE) X(CmpSGT) X(CmpSGE)                   \
  X(CmpOEQ) X(CmpONE) X(CmpOLT) X(CmpOLE) X(CmpOGT) X(CmpOGE)                 \
  /* Casts: Dst = cast(A). ZExt (i1->i64) and Trunc (i64->i1) are the */      \
  /* same low-bit mask and share Bit1. */                                     \
  X(SIToFP) X(FPToSI) X(Bit1)                                                 \
  /* Memory: Alloca size is a 64-bit immediate split across A (low) */        \
  /* and B (high); Gep element size is the C immediate. */                    \
  X(Alloca) X(Load) X(Store) X(Gep)                                           \
  X(Select) /* Dst = A ? B : C (all registers). */                            \
  /* Calls: A = callee function id / builtin id / intrinsic-site */           \
  /* index, B = ArgPool offset, C = argument count. */                        \
  X(Call) X(CallBuiltin) X(CallIntrinsic)                                     \
  X(Br)      /* A = edge index. */                                            \
  X(CondBr)  /* A = condition register, B/C = true/false edge indices. */     \
  X(Ret)     /* A = result register. */                                       \
  X(RetVoid)                                                                  \
  X(Fault)   /* Lazily-reported compile diagnostics; Fk = FaultKind. */       \
  /* --- Superinstructions (peephole-fused pairs) ------------------- */      \
  /* Cmp + CondBr: Dst = cmp dst (still written), A/B = cmp operands, */      \
  /* C = edge base (true edge C, false edge C+1 — conditional-branch */       \
  /* edges are allocated consecutively by the compiler). */                   \
  X(CmpEQBr) X(CmpNEBr) X(CmpSLTBr) X(CmpSLEBr) X(CmpSGTBr) X(CmpSGEBr)       \
  X(CmpOEQBr) X(CmpONEBr) X(CmpOLTBr) X(CmpOLEBr) X(CmpOGTBr) X(CmpOGEBr)     \
  /* Load + AddI (load feeds the add): Dst = add dst, A = pointer, */         \
  /* B = the add's other operand, C = load dst (still written). */            \
  X(LoadAddI)                                                                 \
  /* AddI + Store (sum is the stored value): Dst = add dst (still */          \
  /* written), A/B = add operands, C = store pointer register. */             \
  X(AddIStore)                                                                \
  /* Gep (8-byte elements) + Load/Store through it: A = base, */              \
  /* B = index; GepLoad: Dst = load dst, C = gep dst (still written); */      \
  /* GepStore: Dst = gep dst, C = stored-value register. */                   \
  X(GepLoad) X(GepStore)                                                      \
  /* Load + FAdd (the loaded bits are one addend): Dst = fadd dst, */         \
  /* A = pointer, B = the other addend, C = load dst (still written). */      \
  X(LoadFAdd)                                                                 \
  /* SIToFP + FMul (the converted value is one factor): Dst = fmul */         \
  /* dst, A = int source, B = the other factor, C = sitofp dst */             \
  /* (still written). */                                                      \
  X(SIToFPFMul)                                                               \
  /* FMul + FAdd (multiply-accumulate): Dst = fadd dst, A/B = fmul */         \
  /* operands, C = the other addend, E = fmul dst (still written). */         \
  X(FMulFAdd)                                                                 \
  /* MulI + SRemI (hashed-index pattern): Dst = srem dst, A/B = mul */        \
  /* operands, C = modulus register, E = mul dst (still written). */          \
  X(MulISRemI)                                                                \
  /* FAdd + FSub of the sum: Dst = fsub dst, A/B = fadd operands, */          \
  /* C = subtrahend, E = fadd dst (still written). */                         \
  X(FAddFSub)                                                                 \
  /* AddI + Br (the counted-loop latch): Dst/A/B as AddI, C = edge */         \
  /* index. */                                                                \
  X(AddIBr)

/// One register-VM opcode; values follow GR_OPCODE_LIST order.
enum class Opcode : uint8_t {
#define GR_OPCODE_ENUM(name) name,
  GR_OPCODE_LIST(GR_OPCODE_ENUM)
#undef GR_OPCODE_ENUM
};

/// Number of opcodes (sizes the computed-goto label table).
inline constexpr unsigned NumOpcodes = 0
#define GR_OPCODE_COUNT(name) +1
    GR_OPCODE_LIST(GR_OPCODE_COUNT)
#undef GR_OPCODE_COUNT
    ;

/// Runtime faults resolved at compile time but reported only when the
/// faulting code actually executes, so compiled execution matches the
/// tree-walker on programs whose malformed corners are never reached.
enum class FaultKind : uint8_t {
  PhiNoEntry,    ///< "interpreter: phi has no entry for edge"
  UnknownExtern, ///< "interpreter: call to unknown external function"
  NoDefinition,  ///< "interpreter: use of value with no definition"
  NoTerminator,  ///< "interpreter: block fell through without terminator"
  BadInst,       ///< phi after a non-phi (unreachable in verified IR)
};

/// One compiled instruction. Dst and A/B/C/E are virtual register
/// indices unless the opcode documents them as immediates. E is the
/// fifth operand field used only by superinstructions that preserve
/// an intermediate destination (FMulFAdd, MulISRemI); the frontend
/// compiler always emits it as 0.
struct BCInst {
  Opcode Op;
  FaultKind Fk; ///< Only meaningful for Opcode::Fault.
  uint32_t Dst;
  uint32_t A;
  uint32_t B;
  uint32_t C;
  uint32_t E;
};

/// One phi move: frame register Dst receives frame register Src when
/// the owning edge is taken. Lists execute with simultaneous-
/// assignment semantics (all sources read before any write).
struct RegMove {
  uint32_t Dst;
  uint32_t Src;
};

/// One CFG edge a branch can take: where to resume, which dense block
/// is entered (its profile counter is bumped), and the phi moves the
/// edge carries.
struct Edge {
  uint32_t TargetPC = 0;
  uint32_t TargetBlock = 0;
  uint32_t MoveOff = 0;
  uint32_t MoveCount = 0;
  /// Taking the edge faults (a target phi has no entry for it, or an
  /// incoming value has no register), like the tree-walker would.
  bool Fault = false;
  FaultKind Fk = FaultKind::PhiNoEntry;
};

/// Descriptor for one constant-pool slot. Slots are instantiated into
/// a per-interpreter frame template (global addresses depend on the
/// interpreter's memory) and memcpy'd into the frame on every call.
struct ConstDesc {
  enum Kind : uint8_t { Int, Float, GlobalAddr } K;
  /// Raw payload: the integer value, the double's bit pattern, or the
  /// dense global id.
  uint64_t Bits;
};

/// External callees the VM can dispatch without a string compare.
/// Resolved from the callee name once at compile time; the reference
/// tree-walker resolves the same table per call.
enum class BuiltinId : uint8_t {
  Sqrt, Log, Exp, Sin, Cos, FAbs, Floor, FMin, FMax, Pow,
  IMin, IMax, PrintI64, PrintF64, GrRand, GrRandSeed,
  None, ///< Unknown external (faults when called).
};

/// Maps an external function name to its BuiltinId (None if unknown).
BuiltinId lookupBuiltin(const std::string &Name);

/// One function lowered to bytecode. Frame register layout:
/// [0, NumConsts) constant pool, [NumConsts, NumConsts + NumArgs)
/// arguments, then one register per value-producing instruction.
struct BytecodeFunction {
  uint32_t NumConsts = 0;
  uint32_t NumArgs = 0;
  uint32_t NumRegs = 0;
  uint32_t EntryPC = 0;
  uint32_t EntryBlock = 0; ///< Dense id of the entry block.
  /// Entry block has phis: calling the function faults (the
  /// tree-walker's "phi has no entry for edge" on the null edge).
  bool EntryFault = false;
  std::vector<BCInst> Code;
  std::vector<ConstDesc> Consts;
  std::vector<RegMove> Moves;
  std::vector<Edge> Edges;
  /// Flattened per-call argument register lists (Call*::B/C index it).
  std::vector<uint32_t> ArgPool;
  /// Call sites of __gr_* intrinsics, for the handler's CallInst view.
  std::vector<const CallInst *> IntrinsicSites;
};

/// A whole module compiled once: the shared layout plus one
/// BytecodeFunction per definition (declaration slots stay empty).
/// Immutable after compilation, so repeated `call`s — and any number
/// of Interpreter instances over the same module — share it, the same
/// ethos as IdiomRegistry::compiledSpecs().
class BytecodeModule {
public:
  /// Compiles every definition in \p M. Superinstruction fusion runs
  /// when the resolved dispatch mode (GR_DISPATCH) requests it.
  static std::shared_ptr<const BytecodeModule> compile(const Module &M);

  /// Compiles with fusion explicitly on or off (the dispatch-mode
  /// ablation bench compiles both artifacts side by side).
  static std::shared_ptr<const BytecodeModule> compile(const Module &M,
                                                       bool EnableFusion);

  const ExecLayout &layout() const { return Layout; }
  const BytecodeFunction &function(uint32_t Id) const { return Funcs[Id]; }
  /// Largest phi-move list over all edges (sizes the VM's scratch).
  uint32_t maxEdgeMoves() const { return MaxEdgeMoves; }
  /// Largest argument count over all call sites.
  uint32_t maxCallArgs() const { return MaxCallArgs; }

  /// Whether the peephole fusion pass ran over this module.
  bool isFused() const { return Fused; }
  /// Instruction pairs the fusion pass replaced by superinstructions.
  uint64_t fusedPairs() const { return FusedPairs; }

  /// Whether \p FuncId (transitively, through internal calls) may call
  /// a builtin that touches interpreter-global streams — gr_rand /
  /// gr_rand_seed (the LCG state) or print_i64 / print_f64 (captured
  /// output). The threaded runtime runs such sections serially chained
  /// so the streams interleave exactly as in a sequential run.
  bool touchesGlobalStream(uint32_t FuncId) const;

private:
  BytecodeModule(const Module &M, bool EnableFusion);

  ExecLayout Layout;
  std::vector<BytecodeFunction> Funcs;
  uint32_t MaxEdgeMoves = 0;
  uint32_t MaxCallArgs = 0;
  bool Fused = false;
  uint64_t FusedPairs = 0;
  /// Per-function global-stream flag, resolved transitively at
  /// compile time (index = function id).
  std::vector<bool> StreamFlags;
};

/// Lowers single functions against a shared layout. BytecodeModule
/// drives it over every definition; exposed for tests.
class BytecodeCompiler {
public:
  explicit BytecodeCompiler(const ExecLayout &Layout) : Layout(Layout) {}

  BytecodeFunction compile(const Function &F) const;

  /// The superinstruction peephole: rewrites adjacent instruction
  /// pairs from the static fusion table into single fused opcodes,
  /// remapping every branch-target pc. Only pairs whose second
  /// instruction is not a jump target fuse (branch targets are always
  /// block heads). Returns the number of pairs fused.
  static uint64_t fuseSuperinstructions(BytecodeFunction &BF);

private:
  const ExecLayout &Layout;
};

} // namespace gr

#endif // GR_INTERP_BYTECODE_H
