//===- Memory.h - flat interpreter memory ---------------------*- C++ -*-===//
///
/// \file
/// The interpreter's address space: a permanent region (globals and
/// runtime-allocated buffers such as private histogram copies) and a
/// stack region for allocas. The two regions live in separate buffers
/// and are distinguished by an address tag bit, so either can grow
/// without invalidating pointers into the other. Address 0 is null.
///
//===----------------------------------------------------------------------===//

#ifndef GR_INTERP_MEMORY_H
#define GR_INTERP_MEMORY_H

#include <cstdint>
#include <cstring>
#include <vector>

namespace gr {

/// Interpreter memory. All scalar slots are 8 bytes.
class Memory {
public:
  static constexpr uint64_t StackTag = uint64_t(1) << 40;

  /// Permanent allocation (globals, runtime buffers). Zero-filled.
  uint64_t allocatePermanent(uint64_t Bytes);

  /// Stack allocation for allocas; released via restoreStack.
  uint64_t allocateStack(uint64_t Bytes);
  uint64_t stackMark() const { return StackTop; }
  void restoreStack(uint64_t Mark) { StackTop = Mark; }

  int64_t readInt(uint64_t Addr) const {
    int64_t V;
    std::memcpy(&V, slot(Addr), 8);
    return V;
  }
  double readFloat(uint64_t Addr) const {
    double V;
    std::memcpy(&V, slot(Addr), 8);
    return V;
  }
  void writeInt(uint64_t Addr, int64_t V) { std::memcpy(slot(Addr), &V, 8); }
  void writeFloat(uint64_t Addr, double V) {
    std::memcpy(slot(Addr), &V, 8);
  }

private:
  const uint8_t *slot(uint64_t Addr) const {
    return (Addr & StackTag) ? &Stack[Addr & ~StackTag] : &Permanent[Addr];
  }
  uint8_t *slot(uint64_t Addr) {
    return (Addr & StackTag) ? &Stack[Addr & ~StackTag] : &Permanent[Addr];
  }

  std::vector<uint8_t> Permanent = std::vector<uint8_t>(4096, 0);
  std::vector<uint8_t> Stack = std::vector<uint8_t>(4096, 0);
  uint64_t PermanentTop = 8; // Skip address 0 (null).
  uint64_t StackTop = 8;
};

} // namespace gr

#endif // GR_INTERP_MEMORY_H
