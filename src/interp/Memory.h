//===- Memory.h - flat interpreter memory ---------------------*- C++ -*-===//
///
/// \file
/// The interpreter's address space: a permanent region (globals and
/// runtime-allocated buffers such as private histogram copies) and a
/// stack region for allocas. The two regions live in separate buffers
/// and are distinguished by an address tag bit, so either can grow
/// without invalidating pointers into the other. Address 0 is null.
///
/// The permanent region is reference-counted so the threaded parallel
/// runtime can give each worker a *view* of the master's memory:
/// workers share the permanent region (globals, privatized buffers)
/// while owning a private stack for their allocas. Sharing is safe
/// because the region never grows during a parallel section — the
/// runtime pre-allocates every private buffer before spawning and
/// freezes the region while workers run (freezePermanent), so
/// concurrent accesses never race with a reallocation.
///
//===----------------------------------------------------------------------===//

#ifndef GR_INTERP_MEMORY_H
#define GR_INTERP_MEMORY_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace gr {

/// Interpreter memory. All scalar slots are 8 bytes.
class Memory {
public:
  static constexpr uint64_t StackTag = uint64_t(1) << 40;

  /// The shareable permanent region (globals, runtime buffers).
  struct PermanentRegion {
    std::vector<uint8_t> Data = std::vector<uint8_t>(4096, 0);
    uint64_t Top = 8; ///< Skip address 0 (null).
    /// Set while worker views execute concurrently; growth would
    /// invalidate their accesses, so allocation aborts.
    bool Frozen = false;
  };

  Memory() : Perm(std::make_shared<PermanentRegion>()) {}

  /// A view sharing \p Shared with other Memory instances; the stack
  /// stays private to this instance.
  explicit Memory(std::shared_ptr<PermanentRegion> Shared)
      : Perm(std::move(Shared)) {}

  /// The region handle, for constructing worker views.
  const std::shared_ptr<PermanentRegion> &sharedPermanent() const {
    return Perm;
  }

  /// Permanent allocation (globals, runtime buffers). Zero-filled.
  /// Fatal while the region is frozen.
  uint64_t allocatePermanent(uint64_t Bytes);

  /// Marks the permanent region immutable in *size* (contents stay
  /// writable) while worker views run concurrently.
  void freezePermanent(bool Frozen) { Perm->Frozen = Frozen; }

  /// Stack allocation for allocas; released via restoreStack.
  uint64_t allocateStack(uint64_t Bytes);
  uint64_t stackMark() const { return StackTop; }
  void restoreStack(uint64_t Mark) { StackTop = Mark; }

  /// Arena-memory ceiling in bytes across both regions (0 = none).
  /// An allocation whose growth would cross it — or an injected
  /// vm_mem_grow fault — throws BudgetError{ErrCode::Oom} instead of
  /// growing, which VM::call unwinds cleanly (docs/ROBUSTNESS.md).
  void setByteLimit(uint64_t Bytes) { ByteLimit = Bytes; }

  /// Bytes currently allocated across both regions.
  uint64_t bytesUsed() const { return Perm->Top + StackTop; }

  int64_t readInt(uint64_t Addr) const {
    int64_t V;
    std::memcpy(&V, slot(Addr), 8);
    return V;
  }
  double readFloat(uint64_t Addr) const {
    double V;
    std::memcpy(&V, slot(Addr), 8);
    return V;
  }
  void writeInt(uint64_t Addr, int64_t V) { std::memcpy(slot(Addr), &V, 8); }
  void writeFloat(uint64_t Addr, double V) {
    std::memcpy(slot(Addr), &V, 8);
  }

private:
  const uint8_t *slot(uint64_t Addr) const {
    return (Addr & StackTag) ? &Stack[Addr & ~StackTag]
                             : &Perm->Data[Addr];
  }
  uint8_t *slot(uint64_t Addr) {
    return (Addr & StackTag) ? &Stack[Addr & ~StackTag]
                             : &Perm->Data[Addr];
  }

  std::shared_ptr<PermanentRegion> Perm;
  std::vector<uint8_t> Stack = std::vector<uint8_t>(4096, 0);
  uint64_t StackTop = 8;
  uint64_t ByteLimit = 0;
};

} // namespace gr

#endif // GR_INTERP_MEMORY_H
