//===- Interpreter.h - IR interpreter with profiling ----------*- C++ -*-===//
///
/// \file
/// Executes SSA modules directly. Supplies the math/print/rand
/// builtins, counts executed instructions per basic block (the
/// profiler behind the runtime-coverage figures), and exposes an
/// intrinsic hook so the parallel-reduction runtime can intercept
/// calls to outlined loop bodies.
///
//===----------------------------------------------------------------------===//

#ifndef GR_INTERP_INTERPRETER_H
#define GR_INTERP_INTERPRETER_H

#include "interp/Memory.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace gr {

class Argument;
class BasicBlock;
class CallInst;
class Function;
class GlobalVariable;
class Instruction;
class Module;
class Value;

/// One dynamic value: scalar slots and addresses share 8 bytes.
union Slot {
  int64_t I;
  double F;
  uint64_t Ptr;
};

/// Execution statistics and profile.
struct ExecProfile {
  uint64_t InstructionsExecuted = 0;
  std::map<const BasicBlock *, uint64_t> BlockCounts;
};

/// The interpreter for one module instance.
class Interpreter {
public:
  explicit Interpreter(Module &M);

  /// Calls \p F with \p Args and returns its result (undefined Slot
  /// for void functions).
  Slot call(Function *F, const std::vector<Slot> &Args);

  /// Convenience: runs "main" with no arguments.
  int64_t runMain();

  Memory &getMemory() { return Mem; }
  const ExecProfile &getProfile() const { return Profile; }
  uint64_t instructionCount() const { return Profile.InstructionsExecuted; }

  /// Address of a global in interpreter memory.
  uint64_t addressOfGlobal(const GlobalVariable *GV) const;

  /// Captured output of print_i64/print_f64.
  const std::string &getOutput() const { return Output; }

  /// Handler invoked for calls to intrinsics (function declarations
  /// whose name starts with "__gr_"). Receives the call and evaluated
  /// arguments; returns the call's result slot.
  using IntrinsicHandler =
      std::function<Slot(Interpreter &, const CallInst *,
                         const std::vector<Slot> &)>;
  void setIntrinsicHandler(IntrinsicHandler Handler) {
    Intrinsic = std::move(Handler);
  }

  /// Deterministic LCG used by the gr_rand builtin.
  void seedRandom(uint64_t Seed) { RandState = Seed * 2 + 1; }

  /// Aborts execution (via reportFatalError) after this many
  /// instructions; guards tests against runaway loops.
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }

private:
  Slot evalOperand(const Value *V,
                   const std::map<const Value *, Slot> &Frame) const;
  Slot callBuiltin(Function *Callee, const CallInst *Call,
                   const std::vector<Slot> &Args);

  Module &M;
  Memory Mem;
  ExecProfile Profile;
  std::map<const GlobalVariable *, uint64_t> GlobalAddrs;
  std::string Output;
  IntrinsicHandler Intrinsic;
  uint64_t RandState = 12345;
  uint64_t StepLimit = UINT64_MAX;
  unsigned CallDepth = 0;
};

} // namespace gr

#endif // GR_INTERP_INTERPRETER_H
