//===- Interpreter.h - IR execution with profiling ------------*- C++ -*-===//
///
/// \file
/// Executes SSA modules. Supplies the math/print/rand builtins, counts
/// executed instructions per basic block (the profiler behind the
/// runtime-coverage figures), and exposes an intrinsic hook so the
/// parallel-reduction runtime can intercept calls to outlined loop
/// bodies.
///
/// Two engines share this facade, selected by ExecKind / the GR_EXEC
/// environment variable (mirroring the constraint solver's
/// SolverKind / GR_SOLVER split):
///
///  - Bytecode (default): functions are lowered once by the
///    BytecodeCompiler and run on the register VM — flat Slot-array
///    frames, operands resolved at compile time, zero steady-state
///    allocations across calls (VM.h).
///  - Reference: the original tree-walking interpreter, kept as the
///    differential-testing oracle.
///
/// Both engines count into the same dense ExecProfile (block ids from
/// the shared ExecLayout), so profiles are bitwise comparable.
///
//===----------------------------------------------------------------------===//

#ifndef GR_INTERP_INTERPRETER_H
#define GR_INTERP_INTERPRETER_H

#include "interp/Memory.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gr {

class Argument;
class BasicBlock;
class Budget;
class BytecodeModule;
class CallInst;
class ExecLayout;
class Function;
class GlobalVariable;
class Instruction;
class Module;
class VM;
class Value;
enum class BuiltinId : uint8_t;

/// One dynamic value: scalar slots and addresses share 8 bytes.
union Slot {
  int64_t I;
  double F;
  uint64_t Ptr;
};

/// Which execution engine runs the module.
enum class ExecKind {
  /// Resolve from the GR_EXEC environment variable ("reference"
  /// selects the tree-walking oracle); the bytecode VM otherwise.
  Default,
  /// The compiled register VM (production engine).
  Bytecode,
  /// The original tree-walking interpreter (differential oracle).
  Reference,
};

/// Resolves ExecKind::Default against the GR_EXEC environment
/// variable; returns other kinds unchanged. An unrecognized GR_EXEC
/// value warns once per process (same contract as GR_DETECT_WORKERS)
/// and falls back to the bytecode engine.
ExecKind resolveExecKind(ExecKind Kind);

/// Stable lowercase name of a resolved engine ("bytecode",
/// "reference") for tool/bench JSON output.
const char *execKindName(ExecKind Kind);

/// How the bytecode VM dispatches, and whether the compiler fuses
/// superinstructions. The three resolved tiers:
///
///  - Switch: portable switch loop over unfused code (the fallback
///    and the ablation baseline).
///  - Goto: direct-threaded computed-goto loop over unfused code
///    (isolates the dispatch win from the fusion win).
///  - Fused: computed-goto loop over superinstruction-fused code (the
///    production tier, and the default).
///
/// On toolchains without computed goto the Goto/Fused loops fall back
/// to the switch loop (dispatchHasComputedGoto()); fusion still
/// applies. Execution semantics — results, output, and the bitwise
/// ExecProfile — are identical across all modes by contract.
enum class DispatchMode {
  Default, ///< Resolve from the GR_DISPATCH environment variable.
  Switch,
  Goto,
  Fused,
};

/// Resolves DispatchMode::Default against the GR_DISPATCH environment
/// variable ("switch" | "goto" | "fused"); returns other modes
/// unchanged. Unset resolves to Fused; an unrecognized value warns
/// once per process and resolves to Fused.
DispatchMode resolveDispatchMode(DispatchMode Mode);

/// Stable lowercase name of a resolved mode ("switch" | "goto" |
/// "fused").
const char *dispatchModeName(DispatchMode Mode);

/// Whether this build's VM has a computed-goto dispatch loop (GNU
/// label-address extension); without it Goto/Fused dispatch runs on
/// the switch loop.
bool dispatchHasComputedGoto();

/// Execution statistics and profile. BlockCounts is a flat counter
/// array indexed by the module's dense block ids (ExecLayout); both
/// engines produce bitwise-identical profiles for the same program.
struct ExecProfile {
  uint64_t InstructionsExecuted = 0;
  std::vector<uint64_t> BlockCounts;

  bool operator==(const ExecProfile &O) const {
    return InstructionsExecuted == O.InstructionsExecuted &&
           BlockCounts == O.BlockCounts;
  }
  bool operator!=(const ExecProfile &O) const { return !(*this == O); }
};

/// The execution facade for one module instance.
class Interpreter {
public:
  /// \p Bytecode lets callers share one compiled module across many
  /// Interpreter instances (benches constructing an interpreter per
  /// iteration); when null the constructor compiles \p M itself.
  /// \p Dispatch selects the VM dispatch tier (DispatchMode::Default
  /// resolves GR_DISPATCH); it does not recompile a shared \p Bytecode,
  /// so callers running the fused tier over a shared artifact compile
  /// it fused themselves.
  explicit Interpreter(Module &M, ExecKind Kind = ExecKind::Default,
                       std::shared_ptr<const BytecodeModule> Bytecode =
                           nullptr,
                       DispatchMode Dispatch = DispatchMode::Default);

  /// Worker view for the threaded parallel runtime: shares \p Master's
  /// permanent memory region (globals, runtime buffers) and dense
  /// global addresses, but owns a private alloca stack, profile,
  /// output capture and rand stream. The same engine and compiled
  /// module as the master. Safe to run on a pool thread while other
  /// views execute, provided nothing allocates permanent memory
  /// concurrently (Memory::freezePermanent enforces this).
  explicit Interpreter(Interpreter &Master);

  ~Interpreter();

  /// Calls \p F with \p Args and returns its result (undefined Slot
  /// for void functions).
  Slot call(Function *F, const std::vector<Slot> &Args);

  /// Convenience: runs "main" with no arguments.
  int64_t runMain();

  /// The engine actually executing (never ExecKind::Default).
  ExecKind getExecKind() const { return Kind; }

  /// The resolved dispatch tier (never DispatchMode::Default).
  DispatchMode getDispatchMode() const { return Dispatch; }

  Memory &getMemory() { return Mem; }
  const ExecProfile &getProfile() const { return Profile; }
  uint64_t instructionCount() const { return Profile.InstructionsExecuted; }

  /// Zeroes the instruction counter and every block counter. The
  /// threaded runtime resets reused worker views between sections so
  /// per-section deltas are plain totals.
  void resetProfile();

  /// Times the block with dense id \c layout().blockId(BB) was
  /// entered; 0 for blocks outside the module.
  uint64_t blockCount(const BasicBlock *BB) const;

  /// The module-wide dense numbering shared by both engines.
  const ExecLayout &getLayout() const;

  /// The compiled module (always present; the reference engine uses
  /// only its layout).
  const BytecodeModule &getBytecode() const { return *BC; }

  /// Address of a global in interpreter memory.
  uint64_t addressOfGlobal(const GlobalVariable *GV) const;

  /// Captured output of print_i64/print_f64.
  const std::string &getOutput() const { return Output; }

  /// Handler invoked for calls to intrinsics (function declarations
  /// whose name starts with "__gr_"). Receives the call and evaluated
  /// arguments; returns the call's result slot.
  using IntrinsicHandler =
      std::function<Slot(Interpreter &, const CallInst *,
                         const std::vector<Slot> &)>;
  void setIntrinsicHandler(IntrinsicHandler Handler) {
    Intrinsic = std::move(Handler);
  }

  /// Deterministic LCG used by the gr_rand builtin.
  void seedRandom(uint64_t Seed) { RandState = Seed * 2 + 1; }

  /// Aborts execution (via reportFatalError) after this many
  /// instructions; guards tests against runaway loops.
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }

  /// Attaches a cooperative request budget (support/Budget.h; null
  /// detaches). Unlike the hard StepLimit abort, budget ceilings —
  /// wall-clock deadline, MaxVMSteps, memory bytes — surface as a
  /// thrown BudgetError that leaves the interpreter reusable: the VM
  /// unwinds its frames, register stack, call depth and alloca stack
  /// to the state before the tripped call. The deadline is polled at
  /// counter-flush boundaries (a chunked re-arm of the step-limit
  /// check), so dispatch-tier instruction counting stays bitwise
  /// identical. The memory ceiling also governs the reference engine;
  /// deadline/step ceilings govern the bytecode VM.
  void setBudget(Budget *B);

private:
  friend class VM;
  friend class ThreadedRunner;

  /// The reference tree-walking engine (the seed interpreter).
  Slot callReference(Function *F, const std::vector<Slot> &Args);
  Slot evalOperand(const Value *V,
                   const std::map<const Value *, Slot> &Frame) const;
  Slot callBuiltin(Function *Callee, const CallInst *Call,
                   const std::vector<Slot> &Args);

  /// Shared builtin semantics: both engines funnel through this, so
  /// output formatting and the rand stream cannot diverge.
  Slot runBuiltin(BuiltinId Id, const Slot *Args);

  /// Depth-indexed scratch argument vectors: internal calls and
  /// intrinsic dispatch reuse one vector per call depth instead of
  /// allocating per call. References stay valid across growth.
  std::vector<Slot> &argScratch(unsigned Depth);

  Module &M;
  ExecKind Kind;
  DispatchMode Dispatch;
  std::shared_ptr<const BytecodeModule> BC;
  std::unique_ptr<VM> Machine;
  Memory Mem;
  ExecProfile Profile;
  /// Dense per-global addresses, indexed by ExecLayout global id.
  std::vector<uint64_t> GlobalAddrs;
  std::vector<std::unique_ptr<std::vector<Slot>>> ArgPool;
  std::string Output;
  IntrinsicHandler Intrinsic;
  uint64_t RandState = 12345;
  uint64_t StepLimit = UINT64_MAX;
  Budget *Bdgt = nullptr;
  unsigned CallDepth = 0;
};

} // namespace gr

#endif // GR_INTERP_INTERPRETER_H
