//===- VM.cpp -------------------------------------------------*- C++ -*-===//

#include "interp/VM.h"

#include "ir/Function.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cstring>

using namespace gr;

// The direct-threaded loop needs the GNU label-address extension
// (&&label / goto *ptr); gcc and clang both provide it. Elsewhere the
// goto tier falls back to the switch loop — selectable modes keep
// working, only the dispatch mechanism differs.
#if defined(__GNUC__) || defined(__clang__)
#define GR_HAS_COMPUTED_GOTO 1
#else
#define GR_HAS_COMPUTED_GOTO 0
#endif

bool gr::dispatchHasComputedGoto() { return GR_HAS_COMPUTED_GOTO != 0; }

VM::VM(Interpreter &Host, const BytecodeModule &BC) : Host(Host), BC(BC) {
  // Instantiate every function's constant pool against this
  // interpreter's global addresses, once.
  const ExecLayout &L = BC.layout();
  ConstOffsets.resize(L.numFunctions(), 0);
  for (uint32_t Id = 0; Id != L.numFunctions(); ++Id) {
    const BytecodeFunction &BF = BC.function(Id);
    ConstOffsets[Id] = static_cast<uint32_t>(ConstSlots.size());
    for (const ConstDesc &D : BF.Consts) {
      Slot S{.I = 0};
      switch (D.K) {
      case ConstDesc::Int:
        S.I = static_cast<int64_t>(D.Bits);
        break;
      case ConstDesc::Float:
        std::memcpy(&S.F, &D.Bits, 8);
        break;
      case ConstDesc::GlobalAddr:
        S.Ptr = Host.GlobalAddrs[D.Bits];
        break;
      }
      ConstSlots.push_back(S);
    }
  }
  MoveScratch.resize(BC.maxEdgeMoves());
  RegStack.reserve(1024);
  Frames.reserve(64);
  UseGoto = Host.getDispatchMode() != DispatchMode::Switch &&
            dispatchHasComputedGoto();
}

void VM::fail(const char *Msg, uint64_t ICount) {
  Host.Profile.InstructionsExecuted = ICount;
  reportFatalError(Msg);
}

void VM::failFault(FaultKind Fk, uint64_t ICount) {
  switch (Fk) {
  case FaultKind::PhiNoEntry:
    fail("interpreter: phi has no entry for edge", ICount);
  case FaultKind::UnknownExtern:
    fail("interpreter: call to unknown external function", ICount);
  case FaultKind::NoDefinition:
    fail("interpreter: use of value with no definition", ICount);
  case FaultKind::NoTerminator:
    fail("interpreter: block fell through without terminator", ICount);
  case FaultKind::BadInst:
    break;
  }
  Host.Profile.InstructionsExecuted = ICount;
  gr_unreachable("unknown instruction kind in interpreter");
}

Slot VM::call(uint32_t FuncId, const Slot *Args, uint32_t NumArgs) {
  return UseGoto ? callGoto(FuncId, Args, NumArgs)
                 : callSwitch(FuncId, Args, NumArgs);
}

// Instantiate the two dispatch tiers from the shared handler bodies.
#define GR_VM_LOOP callSwitch
#define GR_VM_GOTO 0
#include "interp/VMExec.inc"
#undef GR_VM_LOOP
#undef GR_VM_GOTO

#if GR_HAS_COMPUTED_GOTO
#define GR_VM_LOOP callGoto
#define GR_VM_GOTO 1
#include "interp/VMExec.inc"
#undef GR_VM_LOOP
#undef GR_VM_GOTO
#else
Slot VM::callGoto(uint32_t FuncId, const Slot *Args, uint32_t NumArgs) {
  return callSwitch(FuncId, Args, NumArgs);
}
#endif
