//===- VM.cpp -------------------------------------------------*- C++ -*-===//

#include "interp/VM.h"

#include "ir/Function.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cstring>

using namespace gr;

VM::VM(Interpreter &Host, const BytecodeModule &BC) : Host(Host), BC(BC) {
  // Instantiate every function's constant pool against this
  // interpreter's global addresses, once.
  const ExecLayout &L = BC.layout();
  ConstOffsets.resize(L.numFunctions(), 0);
  for (uint32_t Id = 0; Id != L.numFunctions(); ++Id) {
    const BytecodeFunction &BF = BC.function(Id);
    ConstOffsets[Id] = static_cast<uint32_t>(ConstSlots.size());
    for (const ConstDesc &D : BF.Consts) {
      Slot S{.I = 0};
      switch (D.K) {
      case ConstDesc::Int:
        S.I = static_cast<int64_t>(D.Bits);
        break;
      case ConstDesc::Float:
        std::memcpy(&S.F, &D.Bits, 8);
        break;
      case ConstDesc::GlobalAddr:
        S.Ptr = Host.GlobalAddrs[D.Bits];
        break;
      }
      ConstSlots.push_back(S);
    }
  }
  MoveScratch.resize(BC.maxEdgeMoves());
  RegStack.reserve(1024);
  Frames.reserve(64);
}

void VM::fail(const char *Msg, uint64_t ICount) {
  Host.Profile.InstructionsExecuted = ICount;
  reportFatalError(Msg);
}

void VM::failFault(FaultKind Fk, uint64_t ICount) {
  switch (Fk) {
  case FaultKind::PhiNoEntry:
    fail("interpreter: phi has no entry for edge", ICount);
  case FaultKind::UnknownExtern:
    fail("interpreter: call to unknown external function", ICount);
  case FaultKind::NoDefinition:
    fail("interpreter: use of value with no definition", ICount);
  case FaultKind::NoTerminator:
    fail("interpreter: block fell through without terminator", ICount);
  case FaultKind::BadInst:
    break;
  }
  Host.Profile.InstructionsExecuted = ICount;
  gr_unreachable("unknown instruction kind in interpreter");
}

Slot VM::call(uint32_t FuncId, const Slot *Args, uint32_t NumArgs) {
  const size_t FrameFloor = Frames.size();
  const uint32_t RegFloor = RegTop;
  uint64_t ICount = Host.Profile.InstructionsExecuted;
  const uint64_t Limit = Host.StepLimit;
  uint64_t *BlockCounts = Host.Profile.BlockCounts.data();

  // Push the root frame (same depth accounting as the tree-walker:
  // every function invocation bumps the shared depth counter).
  if (++Host.CallDepth > 512)
    fail("interpreter: call stack overflow", ICount);
  const BytecodeFunction *BF = &BC.function(FuncId);
  ensureRegs(RegTop + BF->NumRegs);
  uint32_t Base = RegTop;
  RegTop += BF->NumRegs;
  std::memcpy(RegStack.data() + Base, constTemplate(FuncId),
              BF->NumConsts * sizeof(Slot));
  for (uint32_t I = 0; I != NumArgs; ++I)
    RegStack[Base + BF->NumConsts + I] = Args[I];
  Frames.push_back(
      {FuncId, BF->EntryPC, Base, ~0u, Host.Mem.stackMark()});
  ++BlockCounts[BF->EntryBlock];
  if (BF->EntryFault)
    failFault(FaultKind::PhiNoEntry, ICount);

  const BCInst *Code = BF->Code.data();
  Slot *Regs = RegStack.data() + Base;
  uint32_t PC = BF->EntryPC;

  for (;;) {
    const BCInst &In = Code[PC];
    // Every opcode is one executed instruction; phi moves are charged
    // in bulk (uncapped) below, exactly like the tree-walker.
    ++ICount;
    if (ICount > Limit)
      fail("interpreter: step limit exceeded", ICount);

    switch (In.Op) {
    case Opcode::AddI:
      Regs[In.Dst].I = Regs[In.A].I + Regs[In.B].I;
      ++PC;
      break;
    case Opcode::SubI:
      Regs[In.Dst].I = Regs[In.A].I - Regs[In.B].I;
      ++PC;
      break;
    case Opcode::MulI:
      Regs[In.Dst].I = Regs[In.A].I * Regs[In.B].I;
      ++PC;
      break;
    case Opcode::SDivI: {
      int64_t R = Regs[In.B].I;
      if (R == 0)
        fail("interpreter: division by zero", ICount);
      Regs[In.Dst].I = Regs[In.A].I / R;
      ++PC;
      break;
    }
    case Opcode::SRemI: {
      int64_t R = Regs[In.B].I;
      if (R == 0)
        fail("interpreter: remainder by zero", ICount);
      Regs[In.Dst].I = Regs[In.A].I % R;
      ++PC;
      break;
    }
    case Opcode::FAdd:
      Regs[In.Dst].F = Regs[In.A].F + Regs[In.B].F;
      ++PC;
      break;
    case Opcode::FSub:
      Regs[In.Dst].F = Regs[In.A].F - Regs[In.B].F;
      ++PC;
      break;
    case Opcode::FMul:
      Regs[In.Dst].F = Regs[In.A].F * Regs[In.B].F;
      ++PC;
      break;
    case Opcode::FDiv:
      Regs[In.Dst].F = Regs[In.A].F / Regs[In.B].F;
      ++PC;
      break;
    case Opcode::AndI:
      Regs[In.Dst].I = Regs[In.A].I & Regs[In.B].I;
      ++PC;
      break;
    case Opcode::OrI:
      Regs[In.Dst].I = Regs[In.A].I | Regs[In.B].I;
      ++PC;
      break;
    case Opcode::XorI:
      Regs[In.Dst].I = Regs[In.A].I ^ Regs[In.B].I;
      ++PC;
      break;
    case Opcode::ShlI:
      Regs[In.Dst].I = Regs[In.A].I << (Regs[In.B].I & 63);
      ++PC;
      break;
    case Opcode::AShrI:
      Regs[In.Dst].I = Regs[In.A].I >> (Regs[In.B].I & 63);
      ++PC;
      break;

    case Opcode::CmpEQ:
      Regs[In.Dst].I = Regs[In.A].I == Regs[In.B].I ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpNE:
      Regs[In.Dst].I = Regs[In.A].I != Regs[In.B].I ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpSLT:
      Regs[In.Dst].I = Regs[In.A].I < Regs[In.B].I ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpSLE:
      Regs[In.Dst].I = Regs[In.A].I <= Regs[In.B].I ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpSGT:
      Regs[In.Dst].I = Regs[In.A].I > Regs[In.B].I ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpSGE:
      Regs[In.Dst].I = Regs[In.A].I >= Regs[In.B].I ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpOEQ:
      Regs[In.Dst].I = Regs[In.A].F == Regs[In.B].F ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpONE:
      Regs[In.Dst].I = Regs[In.A].F != Regs[In.B].F ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpOLT:
      Regs[In.Dst].I = Regs[In.A].F < Regs[In.B].F ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpOLE:
      Regs[In.Dst].I = Regs[In.A].F <= Regs[In.B].F ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpOGT:
      Regs[In.Dst].I = Regs[In.A].F > Regs[In.B].F ? 1 : 0;
      ++PC;
      break;
    case Opcode::CmpOGE:
      Regs[In.Dst].I = Regs[In.A].F >= Regs[In.B].F ? 1 : 0;
      ++PC;
      break;

    case Opcode::SIToFP:
      Regs[In.Dst].F = static_cast<double>(Regs[In.A].I);
      ++PC;
      break;
    case Opcode::FPToSI:
      Regs[In.Dst].I = static_cast<int64_t>(Regs[In.A].F);
      ++PC;
      break;
    case Opcode::Bit1:
      Regs[In.Dst].I = Regs[In.A].I & 1;
      ++PC;
      break;

    case Opcode::Alloca: {
      uint64_t Bytes =
          static_cast<uint64_t>(In.A) | (static_cast<uint64_t>(In.B) << 32);
      Regs[In.Dst].Ptr = Host.Mem.allocateStack(Bytes);
      ++PC;
      break;
    }
    case Opcode::Load: {
      uint64_t Addr = Regs[In.A].Ptr;
      if (!Addr)
        fail("interpreter: load through null", ICount);
      Regs[In.Dst].I = Host.Mem.readInt(Addr);
      ++PC;
      break;
    }
    case Opcode::Store: {
      uint64_t Addr = Regs[In.B].Ptr;
      if (!Addr)
        fail("interpreter: store through null", ICount);
      Host.Mem.writeInt(Addr, Regs[In.A].I);
      ++PC;
      break;
    }
    case Opcode::Gep:
      Regs[In.Dst].Ptr =
          Regs[In.A].Ptr +
          static_cast<uint64_t>(Regs[In.B].I) * static_cast<uint64_t>(In.C);
      ++PC;
      break;

    case Opcode::Select:
      Regs[In.Dst] = Regs[In.A].I ? Regs[In.B] : Regs[In.C];
      ++PC;
      break;

    case Opcode::Call: {
      if (++Host.CallDepth > 512)
        fail("interpreter: call stack overflow", ICount);
      const BytecodeFunction &Callee = BC.function(In.A);
      FrameRec &Cur = Frames.back();
      Cur.PC = PC + 1;
      const uint32_t CallerBase = Cur.RegBase;
      ensureRegs(RegTop + Callee.NumRegs); // May move the stack.
      uint32_t NewBase = RegTop;
      RegTop += Callee.NumRegs;
      Slot *NewRegs = RegStack.data() + NewBase;
      std::memcpy(NewRegs, constTemplate(In.A),
                  Callee.NumConsts * sizeof(Slot));
      // Arguments copy register-to-register; no per-call vector.
      const uint32_t *AP = BF->ArgPool.data() + In.B;
      const Slot *CallerRegs = RegStack.data() + CallerBase;
      for (uint32_t I = 0; I != In.C; ++I)
        NewRegs[Callee.NumConsts + I] = CallerRegs[AP[I]];
      Frames.push_back({In.A, Callee.EntryPC, NewBase,
                        CallerBase + In.Dst, Host.Mem.stackMark()});
      BF = &Callee;
      Code = BF->Code.data();
      Regs = NewRegs;
      PC = BF->EntryPC;
      ++BlockCounts[BF->EntryBlock];
      if (BF->EntryFault)
        failFault(FaultKind::PhiNoEntry, ICount);
      break;
    }

    case Opcode::CallBuiltin: {
      const uint32_t *AP = BF->ArgPool.data() + In.B;
      Slot BArgs[2] = {{.I = 0}, {.I = 0}};
      uint32_t N = In.C < 2 ? In.C : 2;
      for (uint32_t I = 0; I != N; ++I)
        BArgs[I] = Regs[AP[I]];
      Regs[In.Dst] = Host.runBuiltin(static_cast<BuiltinId>(In.A), BArgs);
      ++PC;
      break;
    }

    case Opcode::CallIntrinsic: {
      if (!Host.Intrinsic)
        fail("interpreter: no handler installed for intrinsic", ICount);
      std::vector<Slot> &IA = Host.argScratch(Host.CallDepth);
      IA.clear();
      const uint32_t *AP = BF->ArgPool.data() + In.B;
      for (uint32_t I = 0; I != In.C; ++I)
        IA.push_back(Regs[AP[I]]);
      // The handler observes the profile (SimulatedParallel charges
      // chunk work by instruction-count deltas) and may re-enter
      // Interpreter::call; flush the counter, reload it after, and
      // recompute the frame pointer (nested runs can move the stack).
      Host.Profile.InstructionsExecuted = ICount;
      Slot R = Host.Intrinsic(Host, BF->IntrinsicSites[In.A], IA);
      ICount = Host.Profile.InstructionsExecuted;
      Regs = RegStack.data() + Frames.back().RegBase;
      Regs[In.Dst] = R;
      ++PC;
      break;
    }

    case Opcode::Br: {
      const Edge &E = BF->Edges[In.A];
      if (E.Fault)
        failFault(E.Fk, ICount);
      ++BlockCounts[E.TargetBlock];
      if (E.MoveCount) {
        const RegMove *Mv = BF->Moves.data() + E.MoveOff;
        Slot *Scr = MoveScratch.data();
        for (uint32_t I = 0; I != E.MoveCount; ++I)
          Scr[I] = Regs[Mv[I].Src];
        for (uint32_t I = 0; I != E.MoveCount; ++I)
          Regs[Mv[I].Dst] = Scr[I];
        ICount += E.MoveCount;
      }
      PC = E.TargetPC;
      break;
    }
    case Opcode::CondBr: {
      const Edge &E = BF->Edges[Regs[In.A].I ? In.B : In.C];
      if (E.Fault)
        failFault(E.Fk, ICount);
      ++BlockCounts[E.TargetBlock];
      if (E.MoveCount) {
        const RegMove *Mv = BF->Moves.data() + E.MoveOff;
        Slot *Scr = MoveScratch.data();
        for (uint32_t I = 0; I != E.MoveCount; ++I)
          Scr[I] = Regs[Mv[I].Src];
        for (uint32_t I = 0; I != E.MoveCount; ++I)
          Regs[Mv[I].Dst] = Scr[I];
        ICount += E.MoveCount;
      }
      PC = E.TargetPC;
      break;
    }

    case Opcode::Ret:
    case Opcode::RetVoid: {
      Slot R{.I = 0};
      if (In.Op == Opcode::Ret)
        R = Regs[In.A];
      FrameRec Done = Frames.back();
      Host.Mem.restoreStack(Done.StackMark);
      --Host.CallDepth;
      Frames.pop_back();
      RegTop = Done.RegBase;
      if (Frames.size() == FrameFloor) {
        Host.Profile.InstructionsExecuted = ICount;
        RegTop = RegFloor;
        return R;
      }
      FrameRec &Caller = Frames.back();
      BF = &BC.function(Caller.FuncId);
      Code = BF->Code.data();
      Regs = RegStack.data() + Caller.RegBase;
      PC = Caller.PC;
      RegStack[Done.RetRegAbs] = R;
      break;
    }

    case Opcode::Fault:
      failFault(In.Fk, ICount);
    }
  }
}
