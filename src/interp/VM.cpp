//===- VM.cpp -------------------------------------------------*- C++ -*-===//

#include "interp/VM.h"

#include "ir/Function.h"
#include "ir/Module.h"
#include "support/Budget.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cstring>

using namespace gr;

// The direct-threaded loop needs the GNU label-address extension
// (&&label / goto *ptr); gcc and clang both provide it. Elsewhere the
// goto tier falls back to the switch loop — selectable modes keep
// working, only the dispatch mechanism differs.
#if defined(__GNUC__) || defined(__clang__)
#define GR_HAS_COMPUTED_GOTO 1
#else
#define GR_HAS_COMPUTED_GOTO 0
#endif

bool gr::dispatchHasComputedGoto() { return GR_HAS_COMPUTED_GOTO != 0; }

VM::VM(Interpreter &Host, const BytecodeModule &BC) : Host(Host), BC(BC) {
  // Instantiate every function's constant pool against this
  // interpreter's global addresses, once.
  const ExecLayout &L = BC.layout();
  ConstOffsets.resize(L.numFunctions(), 0);
  for (uint32_t Id = 0; Id != L.numFunctions(); ++Id) {
    const BytecodeFunction &BF = BC.function(Id);
    ConstOffsets[Id] = static_cast<uint32_t>(ConstSlots.size());
    for (const ConstDesc &D : BF.Consts) {
      Slot S{.I = 0};
      switch (D.K) {
      case ConstDesc::Int:
        S.I = static_cast<int64_t>(D.Bits);
        break;
      case ConstDesc::Float:
        std::memcpy(&S.F, &D.Bits, 8);
        break;
      case ConstDesc::GlobalAddr:
        S.Ptr = Host.GlobalAddrs[D.Bits];
        break;
      }
      ConstSlots.push_back(S);
    }
  }
  MoveScratch.resize(BC.maxEdgeMoves());
  RegStack.reserve(1024);
  Frames.reserve(64);
  UseGoto = Host.getDispatchMode() != DispatchMode::Switch &&
            dispatchHasComputedGoto();
}

void VM::fail(const char *Msg, uint64_t ICount) {
  Host.Profile.InstructionsExecuted = ICount;
  reportFatalError(Msg);
}

void VM::failFault(FaultKind Fk, uint64_t ICount) {
  switch (Fk) {
  case FaultKind::PhiNoEntry:
    fail("interpreter: phi has no entry for edge", ICount);
  case FaultKind::UnknownExtern:
    fail("interpreter: call to unknown external function", ICount);
  case FaultKind::NoDefinition:
    fail("interpreter: use of value with no definition", ICount);
  case FaultKind::NoTerminator:
    fail("interpreter: block fell through without terminator", ICount);
  case FaultKind::BadInst:
    break;
  }
  Host.Profile.InstructionsExecuted = ICount;
  gr_unreachable("unknown instruction kind in interpreter");
}

// Deadline polling granularity: with a wall-clock budget attached the
// armed limit advances in chunks of this many instructions, each chunk
// boundary funneling through budgetCheckpoint for one clock read.
static constexpr uint64_t DeadlineChunk = 1 << 16;

uint64_t VM::effectiveLimit(uint64_t ICount) const {
  uint64_t L = Host.StepLimit;
  const Budget *B = Host.Bdgt;
  if (!B)
    return L;
  if (uint64_t MaxSteps = B->maxVMSteps(); MaxSteps && MaxSteps < L)
    L = MaxSteps;
  if (B->hasDeadline() && ICount + DeadlineChunk < L)
    L = ICount + DeadlineChunk;
  return L;
}

uint64_t VM::budgetCheckpoint(uint64_t ICount) {
  if (ICount > Host.StepLimit)
    fail("interpreter: step limit exceeded", ICount);
  // Non-null here: without a budget the armed limit IS StepLimit, so
  // only the abort above is reachable.
  Budget *B = Host.Bdgt;
  if (uint64_t MaxSteps = B->maxVMSteps(); MaxSteps && ICount > MaxSteps) {
    Host.Profile.InstructionsExecuted = ICount;
    B->trip(ErrCode::StepLimit);
    throw BudgetError{ErrCode::StepLimit};
  }
  if (B->expired()) {
    Host.Profile.InstructionsExecuted = ICount;
    throw BudgetError{B->tripped()};
  }
  return effectiveLimit(ICount);
}

Slot VM::call(uint32_t FuncId, const Slot *Args, uint32_t NumArgs) {
  // Floors of the machine state this invocation owns. A BudgetError
  // thrown mid-dispatch (step/deadline checkpoint, memory ceiling,
  // injected growth fault) unwinds back to them, leaving the machine
  // reusable for the next request; re-entrant invocations (intrinsic
  // handlers calling back in) each restore their own floors.
  const size_t FrameFloor = Frames.size();
  const uint32_t RegFloor = RegTop;
  const unsigned DepthFloor = Host.CallDepth;
  const uint64_t StackFloor = Host.Mem.stackMark();
  try {
    return UseGoto ? callGoto(FuncId, Args, NumArgs)
                   : callSwitch(FuncId, Args, NumArgs);
  } catch (const BudgetError &) {
    Frames.resize(FrameFloor);
    RegTop = RegFloor;
    Host.CallDepth = DepthFloor;
    Host.Mem.restoreStack(StackFloor);
    throw;
  }
}

// Instantiate the two dispatch tiers from the shared handler bodies.
#define GR_VM_LOOP callSwitch
#define GR_VM_GOTO 0
#include "interp/VMExec.inc"
#undef GR_VM_LOOP
#undef GR_VM_GOTO

#if GR_HAS_COMPUTED_GOTO
#define GR_VM_LOOP callGoto
#define GR_VM_GOTO 1
#include "interp/VMExec.inc"
#undef GR_VM_LOOP
#undef GR_VM_GOTO
#else
Slot VM::callGoto(uint32_t FuncId, const Slot *Args, uint32_t NumArgs) {
  return callSwitch(FuncId, Args, NumArgs);
}
#endif
