//===- Interpreter.cpp ----------------------------------------*- C++ -*-===//

#include "interp/Interpreter.h"

#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace gr;

Interpreter::Interpreter(Module &M) : M(M) {
  for (const auto &GV : M.globals())
    GlobalAddrs[GV.get()] =
        Mem.allocatePermanent(GV->getContainedType()->getSizeInBytes());
}

uint64_t Interpreter::addressOfGlobal(const GlobalVariable *GV) const {
  auto It = GlobalAddrs.find(GV);
  assert(It != GlobalAddrs.end() && "global not registered");
  return It->second;
}

Slot Interpreter::evalOperand(
    const Value *V, const std::map<const Value *, Slot> &Frame) const {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return Slot{.I = CI->getValue()};
  if (const auto *CF = dyn_cast<ConstantFloat>(V))
    return Slot{.F = CF->getValue()};
  if (const auto *GV = dyn_cast<GlobalVariable>(V))
    return Slot{.Ptr = addressOfGlobal(GV)};
  auto It = Frame.find(V);
  if (It == Frame.end())
    reportFatalError("interpreter: use of value with no definition");
  return It->second;
}

int64_t Interpreter::runMain() {
  Function *Main = M.getFunction("main");
  if (!Main || Main->isDeclaration())
    reportFatalError("interpreter: module has no main function");
  return call(Main, {}).I;
}

Slot Interpreter::call(Function *F, const std::vector<Slot> &Args) {
  assert(!F->isDeclaration() && "cannot interpret a declaration");
  if (++CallDepth > 512)
    reportFatalError("interpreter: call stack overflow");
  uint64_t StackMark = Mem.stackMark();

  std::map<const Value *, Slot> Frame;
  for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I)
    Frame[F->getArg(I)] = Args[I];

  BasicBlock *Block = F->getEntry();
  BasicBlock *PrevBlock = nullptr;
  Slot Result{.I = 0};

  while (true) {
    ++Profile.BlockCounts[Block];

    // Phase 1: evaluate all phis against the incoming edge, then
    // commit (classic simultaneous-assignment semantics).
    std::vector<std::pair<const Value *, Slot>> PhiValues;
    size_t InstIndex = 0;
    for (Instruction *I : *Block) {
      auto *Phi = dyn_cast<PhiInst>(I);
      if (!Phi)
        break;
      ++InstIndex;
      Value *In = Phi->getIncomingValueFor(PrevBlock);
      if (!In)
        reportFatalError("interpreter: phi has no entry for edge");
      PhiValues.push_back({Phi, evalOperand(In, Frame)});
    }
    for (auto &[Phi, V] : PhiValues)
      Frame[Phi] = V;
    Profile.InstructionsExecuted += PhiValues.size();

    // Phase 2: straight-line execution.
    bool Transferred = false;
    {
      size_t Pos = 0;
      for (Instruction *I : *Block) {
        if (Pos++ < InstIndex)
          continue;
        ++Profile.InstructionsExecuted;
        if (Profile.InstructionsExecuted > StepLimit)
          reportFatalError("interpreter: step limit exceeded");

        switch (I->getKind()) {
        case Value::ValueKind::InstBinary: {
          auto *Bin = cast<BinaryInst>(I);
          Slot L = evalOperand(Bin->getLHS(), Frame);
          Slot R = evalOperand(Bin->getRHS(), Frame);
          Slot Out{.I = 0};
          using Op = BinaryInst::BinaryOp;
          switch (Bin->getBinaryOp()) {
          case Op::Add: Out.I = L.I + R.I; break;
          case Op::Sub: Out.I = L.I - R.I; break;
          case Op::Mul: Out.I = L.I * R.I; break;
          case Op::SDiv:
            if (R.I == 0)
              reportFatalError("interpreter: division by zero");
            Out.I = L.I / R.I;
            break;
          case Op::SRem:
            if (R.I == 0)
              reportFatalError("interpreter: remainder by zero");
            Out.I = L.I % R.I;
            break;
          case Op::FAdd: Out.F = L.F + R.F; break;
          case Op::FSub: Out.F = L.F - R.F; break;
          case Op::FMul: Out.F = L.F * R.F; break;
          case Op::FDiv: Out.F = L.F / R.F; break;
          case Op::And: Out.I = L.I & R.I; break;
          case Op::Or: Out.I = L.I | R.I; break;
          case Op::Xor: Out.I = L.I ^ R.I; break;
          case Op::Shl: Out.I = L.I << (R.I & 63); break;
          case Op::AShr: Out.I = L.I >> (R.I & 63); break;
          }
          Frame[I] = Out;
          break;
        }
        case Value::ValueKind::InstCmp: {
          auto *Cmp = cast<CmpInst>(I);
          Slot L = evalOperand(Cmp->getLHS(), Frame);
          Slot R = evalOperand(Cmp->getRHS(), Frame);
          bool B = false;
          using P = CmpInst::Predicate;
          switch (Cmp->getPredicate()) {
          case P::EQ: B = L.I == R.I; break;
          case P::NE: B = L.I != R.I; break;
          case P::SLT: B = L.I < R.I; break;
          case P::SLE: B = L.I <= R.I; break;
          case P::SGT: B = L.I > R.I; break;
          case P::SGE: B = L.I >= R.I; break;
          case P::OEQ: B = L.F == R.F; break;
          case P::ONE: B = L.F != R.F; break;
          case P::OLT: B = L.F < R.F; break;
          case P::OLE: B = L.F <= R.F; break;
          case P::OGT: B = L.F > R.F; break;
          case P::OGE: B = L.F >= R.F; break;
          }
          Frame[I] = Slot{.I = B ? 1 : 0};
          break;
        }
        case Value::ValueKind::InstCast: {
          auto *Cast = gr::cast<CastInst>(I);
          Slot S = evalOperand(Cast->getSrc(), Frame);
          Slot Out{.I = 0};
          switch (Cast->getCastKind()) {
          case CastInst::CastKind::SIToFP:
            Out.F = static_cast<double>(S.I);
            break;
          case CastInst::CastKind::FPToSI:
            Out.I = static_cast<int64_t>(S.F);
            break;
          case CastInst::CastKind::ZExt:
            Out.I = S.I & 1;
            break;
          case CastInst::CastKind::Trunc:
            Out.I = S.I & 1;
            break;
          }
          Frame[I] = Out;
          break;
        }
        case Value::ValueKind::InstAlloca: {
          auto *AI = cast<AllocaInst>(I);
          Frame[I] = Slot{.Ptr = Mem.allocateStack(
                              AI->getAllocatedType()->getSizeInBytes())};
          break;
        }
        case Value::ValueKind::InstLoad: {
          auto *Load = cast<LoadInst>(I);
          uint64_t Addr = evalOperand(Load->getPointer(), Frame).Ptr;
          if (!Addr)
            reportFatalError("interpreter: load through null");
          Frame[I] = Slot{.I = Mem.readInt(Addr)};
          break;
        }
        case Value::ValueKind::InstStore: {
          auto *Store = cast<StoreInst>(I);
          Slot V = evalOperand(Store->getStoredValue(), Frame);
          uint64_t Addr = evalOperand(Store->getPointer(), Frame).Ptr;
          if (!Addr)
            reportFatalError("interpreter: store through null");
          Mem.writeInt(Addr, V.I);
          break;
        }
        case Value::ValueKind::InstGEP: {
          auto *GEP = cast<GEPInst>(I);
          uint64_t Base = evalOperand(GEP->getPointer(), Frame).Ptr;
          int64_t Index = evalOperand(GEP->getIndex(), Frame).I;
          uint64_t Elem = GEP->getElementType()->getSizeInBytes();
          Frame[I] =
              Slot{.Ptr = Base + static_cast<uint64_t>(Index) * Elem};
          break;
        }
        case Value::ValueKind::InstCall: {
          auto *Call = cast<CallInst>(I);
          Function *Callee = Call->getCallee();
          std::vector<Slot> CallArgs;
          for (unsigned A = 0, AE = Call->getNumArgs(); A != AE; ++A)
            CallArgs.push_back(evalOperand(Call->getArg(A), Frame));
          if (Callee->isDeclaration())
            Frame[I] = callBuiltin(Callee, Call, CallArgs);
          else
            Frame[I] = call(Callee, CallArgs);
          break;
        }
        case Value::ValueKind::InstSelect: {
          auto *Sel = cast<SelectInst>(I);
          Slot C = evalOperand(Sel->getCondition(), Frame);
          Frame[I] = evalOperand(C.I ? Sel->getTrueValue()
                                     : Sel->getFalseValue(),
                                 Frame);
          break;
        }
        case Value::ValueKind::InstBranch: {
          auto *Br = cast<BranchInst>(I);
          BasicBlock *Next;
          if (Br->isConditional()) {
            Slot C = evalOperand(Br->getCondition(), Frame);
            Next = C.I ? Br->getSuccessor(0) : Br->getSuccessor(1);
          } else {
            Next = Br->getSuccessor(0);
          }
          PrevBlock = Block;
          Block = Next;
          Transferred = true;
          break;
        }
        case Value::ValueKind::InstRet: {
          auto *Ret = cast<RetInst>(I);
          if (Ret->hasReturnValue())
            Result = evalOperand(Ret->getReturnValue(), Frame);
          Mem.restoreStack(StackMark);
          --CallDepth;
          return Result;
        }
        default:
          gr_unreachable("unknown instruction kind in interpreter");
        }
        if (Transferred)
          break;
      }
    }
    if (!Transferred)
      reportFatalError("interpreter: block fell through without terminator");
  }
}

Slot Interpreter::callBuiltin(Function *Callee, const CallInst *Call,
                              const std::vector<Slot> &Args) {
  const std::string &Name = Callee->getName();
  if (startsWith(Name, "__gr_")) {
    if (!Intrinsic)
      reportFatalError("interpreter: no handler installed for intrinsic");
    return Intrinsic(*this, Call, Args);
  }
  Slot Out{.I = 0};
  if (Name == "sqrt")
    Out.F = std::sqrt(Args[0].F);
  else if (Name == "log")
    Out.F = std::log(Args[0].F);
  else if (Name == "exp")
    Out.F = std::exp(Args[0].F);
  else if (Name == "sin")
    Out.F = std::sin(Args[0].F);
  else if (Name == "cos")
    Out.F = std::cos(Args[0].F);
  else if (Name == "fabs")
    Out.F = std::fabs(Args[0].F);
  else if (Name == "floor")
    Out.F = std::floor(Args[0].F);
  else if (Name == "fmin")
    Out.F = std::fmin(Args[0].F, Args[1].F);
  else if (Name == "fmax")
    Out.F = std::fmax(Args[0].F, Args[1].F);
  else if (Name == "pow")
    Out.F = std::pow(Args[0].F, Args[1].F);
  else if (Name == "imin")
    Out.I = Args[0].I < Args[1].I ? Args[0].I : Args[1].I;
  else if (Name == "imax")
    Out.I = Args[0].I > Args[1].I ? Args[0].I : Args[1].I;
  else if (Name == "print_i64")
    Output += std::to_string(Args[0].I) + "\n";
  else if (Name == "print_f64")
    Output += formatDouble(Args[0].F, 6) + "\n";
  else if (Name == "gr_rand") {
    RandState = RandState * 6364136223846793005ULL + 1442695040888963407ULL;
    Out.F = static_cast<double>((RandState >> 11) & ((1ULL << 53) - 1)) /
            static_cast<double>(1ULL << 53);
  } else if (Name == "gr_rand_seed") {
    seedRandom(static_cast<uint64_t>(Args[0].I));
  } else {
    reportFatalError("interpreter: call to unknown external function");
  }
  return Out;
}
