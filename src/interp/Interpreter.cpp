//===- Interpreter.cpp ----------------------------------------*- C++ -*-===//

#include "interp/Interpreter.h"

#include "interp/Bytecode.h"
#include "interp/VM.h"
#include "support/Budget.h"
#include "ir/Function.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "support/ErrorHandling.h"
#include "support/OStream.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

using namespace gr;

ExecKind gr::resolveExecKind(ExecKind Kind) {
  if (Kind != ExecKind::Default)
    return Kind;
  if (const char *Env = std::getenv("GR_EXEC")) {
    if (std::strcmp(Env, "reference") == 0)
      return ExecKind::Reference;
    if (std::strcmp(Env, "bytecode") != 0 && *Env != '\0') {
      // Diagnose a malformed setting instead of silently running the
      // default engine — but only once per process, not per resolve.
      static bool Warned = [](const char *Value) {
        errs() << "interp: ignoring GR_EXEC: unknown engine '" << Value
               << "' (expected bytecode|reference)\n";
        return true;
      }(Env);
      (void)Warned;
    }
  }
  return ExecKind::Bytecode;
}

const char *gr::execKindName(ExecKind Kind) {
  switch (Kind) {
  case ExecKind::Reference:
    return "reference";
  case ExecKind::Default:
  case ExecKind::Bytecode:
    break;
  }
  return "bytecode";
}

DispatchMode gr::resolveDispatchMode(DispatchMode Mode) {
  if (Mode != DispatchMode::Default)
    return Mode;
  if (const char *Env = std::getenv("GR_DISPATCH")) {
    if (std::strcmp(Env, "switch") == 0)
      return DispatchMode::Switch;
    if (std::strcmp(Env, "goto") == 0)
      return DispatchMode::Goto;
    if (std::strcmp(Env, "fused") != 0 && *Env != '\0') {
      static bool Warned = [](const char *Value) {
        errs() << "interp: ignoring GR_DISPATCH: unknown dispatch mode '"
               << Value << "' (expected switch|goto|fused)\n";
        return true;
      }(Env);
      (void)Warned;
    }
  }
  return DispatchMode::Fused;
}

const char *gr::dispatchModeName(DispatchMode Mode) {
  switch (Mode) {
  case DispatchMode::Switch:
    return "switch";
  case DispatchMode::Goto:
    return "goto";
  case DispatchMode::Default:
  case DispatchMode::Fused:
    break;
  }
  return "fused";
}

Interpreter::Interpreter(Module &M, ExecKind Kind,
                         std::shared_ptr<const BytecodeModule> Bytecode,
                         DispatchMode Dispatch)
    : M(M), Kind(resolveExecKind(Kind)),
      Dispatch(resolveDispatchMode(Dispatch)),
      BC(Bytecode
             ? std::move(Bytecode)
             : BytecodeModule::compile(
                   M, resolveDispatchMode(Dispatch) == DispatchMode::Fused)) {
  // Globals are allocated in layout (= module) order, reproducing the
  // seed interpreter's address assignment byte for byte.
  const ExecLayout &L = BC->layout();
  GlobalAddrs.resize(L.numGlobals());
  for (uint32_t Id = 0; Id != L.numGlobals(); ++Id)
    GlobalAddrs[Id] = Mem.allocatePermanent(
        L.globalAt(Id)->getContainedType()->getSizeInBytes());
  Profile.BlockCounts.assign(L.numBlocks(), 0);
  if (this->Kind == ExecKind::Bytecode)
    Machine = std::make_unique<VM>(*this, *BC);
}

Interpreter::Interpreter(Interpreter &Master)
    : M(Master.M), Kind(Master.Kind), Dispatch(Master.Dispatch),
      BC(Master.BC), Mem(Master.Mem.sharedPermanent()) {
  // The master already allocated every global into the shared region;
  // reuse its dense address table instead of re-allocating.
  GlobalAddrs = Master.GlobalAddrs;
  Profile.BlockCounts.assign(BC->layout().numBlocks(), 0);
  StepLimit = Master.StepLimit;
  if (Kind == ExecKind::Bytecode)
    Machine = std::make_unique<VM>(*this, *BC);
}

Interpreter::~Interpreter() = default;

void Interpreter::setBudget(Budget *B) {
  Bdgt = B;
  Mem.setByteLimit(B ? B->maxMemoryBytes() : 0);
}

void Interpreter::resetProfile() {
  Profile.InstructionsExecuted = 0;
  std::fill(Profile.BlockCounts.begin(), Profile.BlockCounts.end(), 0);
}

const ExecLayout &Interpreter::getLayout() const { return BC->layout(); }

uint64_t Interpreter::blockCount(const BasicBlock *BB) const {
  uint32_t Id = BC->layout().blockId(BB);
  return Id == ~0u ? 0 : Profile.BlockCounts[Id];
}

uint64_t Interpreter::addressOfGlobal(const GlobalVariable *GV) const {
  uint32_t Id = BC->layout().globalId(GV);
  assert(Id != ~0u && "global not registered");
  return GlobalAddrs[Id];
}

std::vector<Slot> &Interpreter::argScratch(unsigned Depth) {
  while (ArgPool.size() <= Depth)
    ArgPool.push_back(std::make_unique<std::vector<Slot>>());
  return *ArgPool[Depth];
}

Slot Interpreter::evalOperand(
    const Value *V, const std::map<const Value *, Slot> &Frame) const {
  if (const auto *CI = dyn_cast<ConstantInt>(V))
    return Slot{.I = CI->getValue()};
  if (const auto *CF = dyn_cast<ConstantFloat>(V))
    return Slot{.F = CF->getValue()};
  if (const auto *GV = dyn_cast<GlobalVariable>(V))
    return Slot{.Ptr = addressOfGlobal(GV)};
  auto It = Frame.find(V);
  if (It == Frame.end())
    reportFatalError("interpreter: use of value with no definition");
  return It->second;
}

int64_t Interpreter::runMain() {
  Function *Main = M.getFunction("main");
  if (!Main || Main->isDeclaration())
    reportFatalError("interpreter: module has no main function");
  return call(Main, {}).I;
}

Slot Interpreter::call(Function *F, const std::vector<Slot> &Args) {
  assert(!F->isDeclaration() && "cannot interpret a declaration");
  // Both engines count into the layout's dense ids, so a function the
  // compiled module does not know (added after construction, or from
  // another module) is fatal on either path.
  uint32_t Id = BC->layout().functionId(F);
  if (Id == ~0u)
    reportFatalError("interpreter: function not part of compiled module");
  // A BudgetError (memory ceiling, step/deadline ceiling, injected
  // growth fault) unwinds exactly this invocation: latch the cause on
  // the attached budget so every observer agrees on it, and restore
  // the state the engines do not unwind themselves (the reference
  // walker's recursion depth and alloca stack; the VM restores its
  // own machine state in VM::call).
  const unsigned DepthFloor = CallDepth;
  const uint64_t StackFloor = Mem.stackMark();
  try {
    if (Kind == ExecKind::Reference)
      return callReference(F, Args);
    return Machine->call(Id, Args.data(),
                         static_cast<uint32_t>(Args.size()));
  } catch (const BudgetError &E) {
    if (Bdgt)
      Bdgt->trip(E.Code);
    CallDepth = DepthFloor;
    Mem.restoreStack(StackFloor);
    throw;
  }
}

//===----------------------------------------------------------------------===//
// Reference engine: the seed tree-walking interpreter, kept verbatim
// as the differential-testing oracle. Only its profile now counts
// through the dense layout ids and its internal call path reuses
// depth-pooled argument vectors.
//===----------------------------------------------------------------------===//

Slot Interpreter::callReference(Function *F, const std::vector<Slot> &Args) {
  if (++CallDepth > 512)
    reportFatalError("interpreter: call stack overflow");
  uint64_t StackMark = Mem.stackMark();
  const ExecLayout &L = BC->layout();

  std::map<const Value *, Slot> Frame;
  for (unsigned I = 0, E = F->getNumArgs(); I != E; ++I)
    Frame[F->getArg(I)] = Args[I];

  BasicBlock *Block = F->getEntry();
  BasicBlock *PrevBlock = nullptr;
  Slot Result{.I = 0};

  while (true) {
    uint32_t BlockId = L.blockId(Block);
    if (BlockId == ~0u)
      reportFatalError("interpreter: block not part of compiled module");
    ++Profile.BlockCounts[BlockId];

    // Phase 1: evaluate all phis against the incoming edge, then
    // commit (classic simultaneous-assignment semantics).
    std::vector<std::pair<const Value *, Slot>> PhiValues;
    size_t InstIndex = 0;
    for (Instruction *I : *Block) {
      auto *Phi = dyn_cast<PhiInst>(I);
      if (!Phi)
        break;
      ++InstIndex;
      Value *In = Phi->getIncomingValueFor(PrevBlock);
      if (!In)
        reportFatalError("interpreter: phi has no entry for edge");
      PhiValues.push_back({Phi, evalOperand(In, Frame)});
    }
    for (auto &[Phi, V] : PhiValues)
      Frame[Phi] = V;
    Profile.InstructionsExecuted += PhiValues.size();

    // Phase 2: straight-line execution.
    bool Transferred = false;
    {
      size_t Pos = 0;
      for (Instruction *I : *Block) {
        if (Pos++ < InstIndex)
          continue;
        ++Profile.InstructionsExecuted;
        if (Profile.InstructionsExecuted > StepLimit)
          reportFatalError("interpreter: step limit exceeded");

        switch (I->getKind()) {
        case Value::ValueKind::InstBinary: {
          auto *Bin = cast<BinaryInst>(I);
          Slot Lhs = evalOperand(Bin->getLHS(), Frame);
          Slot Rhs = evalOperand(Bin->getRHS(), Frame);
          Slot Out{.I = 0};
          using Op = BinaryInst::BinaryOp;
          switch (Bin->getBinaryOp()) {
          case Op::Add: Out.I = Lhs.I + Rhs.I; break;
          case Op::Sub: Out.I = Lhs.I - Rhs.I; break;
          case Op::Mul: Out.I = Lhs.I * Rhs.I; break;
          case Op::SDiv:
            if (Rhs.I == 0)
              reportFatalError("interpreter: division by zero");
            Out.I = Lhs.I / Rhs.I;
            break;
          case Op::SRem:
            if (Rhs.I == 0)
              reportFatalError("interpreter: remainder by zero");
            Out.I = Lhs.I % Rhs.I;
            break;
          case Op::FAdd: Out.F = Lhs.F + Rhs.F; break;
          case Op::FSub: Out.F = Lhs.F - Rhs.F; break;
          case Op::FMul: Out.F = Lhs.F * Rhs.F; break;
          case Op::FDiv: Out.F = Lhs.F / Rhs.F; break;
          case Op::And: Out.I = Lhs.I & Rhs.I; break;
          case Op::Or: Out.I = Lhs.I | Rhs.I; break;
          case Op::Xor: Out.I = Lhs.I ^ Rhs.I; break;
          case Op::Shl: Out.I = Lhs.I << (Rhs.I & 63); break;
          case Op::AShr: Out.I = Lhs.I >> (Rhs.I & 63); break;
          }
          Frame[I] = Out;
          break;
        }
        case Value::ValueKind::InstCmp: {
          auto *Cmp = cast<CmpInst>(I);
          Slot Lhs = evalOperand(Cmp->getLHS(), Frame);
          Slot Rhs = evalOperand(Cmp->getRHS(), Frame);
          bool B = false;
          using P = CmpInst::Predicate;
          switch (Cmp->getPredicate()) {
          case P::EQ: B = Lhs.I == Rhs.I; break;
          case P::NE: B = Lhs.I != Rhs.I; break;
          case P::SLT: B = Lhs.I < Rhs.I; break;
          case P::SLE: B = Lhs.I <= Rhs.I; break;
          case P::SGT: B = Lhs.I > Rhs.I; break;
          case P::SGE: B = Lhs.I >= Rhs.I; break;
          case P::OEQ: B = Lhs.F == Rhs.F; break;
          case P::ONE: B = Lhs.F != Rhs.F; break;
          case P::OLT: B = Lhs.F < Rhs.F; break;
          case P::OLE: B = Lhs.F <= Rhs.F; break;
          case P::OGT: B = Lhs.F > Rhs.F; break;
          case P::OGE: B = Lhs.F >= Rhs.F; break;
          }
          Frame[I] = Slot{.I = B ? 1 : 0};
          break;
        }
        case Value::ValueKind::InstCast: {
          auto *Cast = gr::cast<CastInst>(I);
          Slot S = evalOperand(Cast->getSrc(), Frame);
          Slot Out{.I = 0};
          switch (Cast->getCastKind()) {
          case CastInst::CastKind::SIToFP:
            Out.F = static_cast<double>(S.I);
            break;
          case CastInst::CastKind::FPToSI:
            Out.I = static_cast<int64_t>(S.F);
            break;
          case CastInst::CastKind::ZExt:
            Out.I = S.I & 1;
            break;
          case CastInst::CastKind::Trunc:
            Out.I = S.I & 1;
            break;
          }
          Frame[I] = Out;
          break;
        }
        case Value::ValueKind::InstAlloca: {
          auto *AI = cast<AllocaInst>(I);
          Frame[I] = Slot{.Ptr = Mem.allocateStack(
                              AI->getAllocatedType()->getSizeInBytes())};
          break;
        }
        case Value::ValueKind::InstLoad: {
          auto *Load = cast<LoadInst>(I);
          uint64_t Addr = evalOperand(Load->getPointer(), Frame).Ptr;
          if (!Addr)
            reportFatalError("interpreter: load through null");
          Frame[I] = Slot{.I = Mem.readInt(Addr)};
          break;
        }
        case Value::ValueKind::InstStore: {
          auto *Store = cast<StoreInst>(I);
          Slot V = evalOperand(Store->getStoredValue(), Frame);
          uint64_t Addr = evalOperand(Store->getPointer(), Frame).Ptr;
          if (!Addr)
            reportFatalError("interpreter: store through null");
          Mem.writeInt(Addr, V.I);
          break;
        }
        case Value::ValueKind::InstGEP: {
          auto *GEP = cast<GEPInst>(I);
          uint64_t Base = evalOperand(GEP->getPointer(), Frame).Ptr;
          int64_t Index = evalOperand(GEP->getIndex(), Frame).I;
          uint64_t Elem = GEP->getElementType()->getSizeInBytes();
          Frame[I] =
              Slot{.Ptr = Base + static_cast<uint64_t>(Index) * Elem};
          break;
        }
        case Value::ValueKind::InstCall: {
          auto *Call = cast<CallInst>(I);
          Function *Callee = Call->getCallee();
          // Depth-pooled scratch: one argument vector per call depth,
          // reused across every call at that depth (no per-call
          // allocation; deeper calls use deeper pool slots, so the
          // buffer stays stable while intrinsic handlers hold it).
          std::vector<Slot> &CallArgs = argScratch(CallDepth);
          CallArgs.clear();
          for (unsigned A = 0, AE = Call->getNumArgs(); A != AE; ++A)
            CallArgs.push_back(evalOperand(Call->getArg(A), Frame));
          if (Callee->isDeclaration())
            Frame[I] = callBuiltin(Callee, Call, CallArgs);
          else
            Frame[I] = callReference(Callee, CallArgs);
          break;
        }
        case Value::ValueKind::InstSelect: {
          auto *Sel = cast<SelectInst>(I);
          Slot C = evalOperand(Sel->getCondition(), Frame);
          Frame[I] = evalOperand(C.I ? Sel->getTrueValue()
                                     : Sel->getFalseValue(),
                                 Frame);
          break;
        }
        case Value::ValueKind::InstBranch: {
          auto *Br = cast<BranchInst>(I);
          BasicBlock *Next;
          if (Br->isConditional()) {
            Slot C = evalOperand(Br->getCondition(), Frame);
            Next = C.I ? Br->getSuccessor(0) : Br->getSuccessor(1);
          } else {
            Next = Br->getSuccessor(0);
          }
          PrevBlock = Block;
          Block = Next;
          Transferred = true;
          break;
        }
        case Value::ValueKind::InstRet: {
          auto *Ret = cast<RetInst>(I);
          if (Ret->hasReturnValue())
            Result = evalOperand(Ret->getReturnValue(), Frame);
          Mem.restoreStack(StackMark);
          --CallDepth;
          return Result;
        }
        default:
          gr_unreachable("unknown instruction kind in interpreter");
        }
        if (Transferred)
          break;
      }
    }
    if (!Transferred)
      reportFatalError("interpreter: block fell through without terminator");
  }
}

//===----------------------------------------------------------------------===//
// Builtins, shared by both engines.
//===----------------------------------------------------------------------===//

Slot Interpreter::runBuiltin(BuiltinId Id, const Slot *Args) {
  Slot Out{.I = 0};
  switch (Id) {
  case BuiltinId::Sqrt: Out.F = std::sqrt(Args[0].F); break;
  case BuiltinId::Log: Out.F = std::log(Args[0].F); break;
  case BuiltinId::Exp: Out.F = std::exp(Args[0].F); break;
  case BuiltinId::Sin: Out.F = std::sin(Args[0].F); break;
  case BuiltinId::Cos: Out.F = std::cos(Args[0].F); break;
  case BuiltinId::FAbs: Out.F = std::fabs(Args[0].F); break;
  case BuiltinId::Floor: Out.F = std::floor(Args[0].F); break;
  case BuiltinId::FMin: Out.F = std::fmin(Args[0].F, Args[1].F); break;
  case BuiltinId::FMax: Out.F = std::fmax(Args[0].F, Args[1].F); break;
  case BuiltinId::Pow: Out.F = std::pow(Args[0].F, Args[1].F); break;
  case BuiltinId::IMin:
    Out.I = Args[0].I < Args[1].I ? Args[0].I : Args[1].I;
    break;
  case BuiltinId::IMax:
    Out.I = Args[0].I > Args[1].I ? Args[0].I : Args[1].I;
    break;
  case BuiltinId::PrintI64:
    Output += std::to_string(Args[0].I) + "\n";
    break;
  case BuiltinId::PrintF64:
    Output += formatDouble(Args[0].F, 6) + "\n";
    break;
  case BuiltinId::GrRand:
    RandState = RandState * 6364136223846793005ULL + 1442695040888963407ULL;
    Out.F = static_cast<double>((RandState >> 11) & ((1ULL << 53) - 1)) /
            static_cast<double>(1ULL << 53);
    break;
  case BuiltinId::GrRandSeed:
    seedRandom(static_cast<uint64_t>(Args[0].I));
    break;
  case BuiltinId::None:
    reportFatalError("interpreter: call to unknown external function");
  }
  return Out;
}

Slot Interpreter::callBuiltin(Function *Callee, const CallInst *Call,
                              const std::vector<Slot> &Args) {
  const std::string &Name = Callee->getName();
  if (startsWith(Name, "__gr_")) {
    if (!Intrinsic)
      reportFatalError("interpreter: no handler installed for intrinsic");
    return Intrinsic(*this, Call, Args);
  }
  // lookupBuiltin reports None for unknown externals; runBuiltin turns
  // that into the fatal the seed interpreter raised.
  return runBuiltin(lookupBuiltin(Name), Args.data());
}
