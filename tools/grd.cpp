//===- grd.cpp - long-lived detection server over stdin -------*- C++ -*-===//
///
/// \file
/// The serving face of the detection pipeline: a long-lived process
/// that accepts a *stream* of textual-IR modules on stdin and answers
/// one result line per request on stdout, keeping the persistent
/// thread pool, the compiled constraint programs and the idiom
/// registry warm across requests — the amortization a fresh gropt
/// process per module cannot have.
///
/// Protocol (line-oriented; responses are flushed per line so the
/// tool can sit behind a pipe or socket relay):
///
///   <path.gr>      parse + detect that file, answer `ok ...`/`error ...`
///   <path.mc>      compile the MiniC source through the frontend
///                  first; compile errors answer as parse_error
///   !stats         answer one aggregate line (served, p50/p99, rate,
///                  per-request cache hits/misses)
///   !cache-stats   answer one line of detection-cache counters
///   !quit          exit 0
///   EOF            print the aggregate line, exit 0
///
///   grd [--workers=N] [--solver=KIND] [--cache[=DIR]] [--json]
///
/// With --workers=N each request is detected with N worker lanes at
/// function granularity on the shared pool (0 = auto); requests
/// themselves are served in arrival order — latency of *this*
/// request, not batch throughput, is the serving contract. For
/// offline throughput over a fixed corpus, use `gropt --batch`.
///
/// With --cache[=DIR] (or GR_CACHE_DIR in the environment) served
/// requests consult the content-addressed detection cache
/// (cache/DetectionCache.h): a byte-identical repeat of an earlier
/// module answers from the module tier without parse or solve, and
/// each ok response carries cache=hit|miss. See docs/CACHING.md.
///
//===----------------------------------------------------------------------===//

#include "cache/DetectionCache.h"
#include "constraint/Solver.h"
#include "idioms/IdiomRegistry.h"
#include "interp/Interpreter.h"
#include "pass/BatchDriver.h"
#include "support/Budget.h"
#include "support/OStream.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace gr;

namespace {

struct ServerOptions {
  unsigned Workers = 0; ///< 0 = auto
  SolverKind Solver = SolverKind::Default;
  bool Json = false;
  bool Cache = false;   ///< --cache[=DIR]
  std::string CacheDir; ///< empty = memory-only
  /// Per-request wall-clock deadline in ms; negative = ungoverned.
  /// 0 is a valid, already-expired deadline (every governed request
  /// degrades immediately — the deterministic smoke). Adjustable at
  /// runtime with the `!deadline-ms <N|none>` command.
  int64_t DeadlineMs = -1;
  /// Memory ceiling in bytes carried on each request budget. Serving
  /// requests only detect (they never execute modules), so this is
  /// part of the budget envelope for symmetry with gropt --run.
  uint64_t MaxMem = 0;
};

void usage() {
  errs() << "usage: grd [--workers=N] [--solver=KIND] [--cache[=DIR]] "
            "[--deadline-ms=N] [--max-mem=BYTES] [--json]\n"
         << "  reads .gr/.mc paths from stdin (one per line); !stats,\n"
         << "  !cache-stats, !deadline-ms <N|none> and !quit are\n"
         << "  control commands. A request that exceeds the deadline\n"
         << "  answers `error <path>: deadline_exceeded` and the\n"
         << "  server keeps serving. See docs/ROBUSTNESS.md,\n"
         << "  docs/THREADING.md and docs/CACHING.md.\n";
}

/// Strict decimal parse for resource flags: junk exits 1 at the call
/// sites (a misconfigured governor must not silently run ungoverned).
bool parseResourceValue(const std::string &Text, uint64_t &Out) {
  auto V = parseInt(Text);
  if (!V || *V < 0)
    return false;
  Out = static_cast<uint64_t>(*V);
  return true;
}

bool parseArgs(int Argc, char **Argv, ServerOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (startsWith(Arg, "--workers=")) {
      std::string Err;
      auto N = parseWorkerCount(Arg.substr(10), &Err);
      if (!N) {
        errs() << "grd: bad --workers value: " << Err << '\n';
        return false;
      }
      Opts.Workers = *N;
    } else if (startsWith(Arg, "--solver=")) {
      std::string K = Arg.substr(9);
      if (K == "compiled")
        Opts.Solver = SolverKind::Compiled;
      else if (K == "reference")
        Opts.Solver = SolverKind::Reference;
      else if (K == "default")
        Opts.Solver = SolverKind::Default;
      else {
        errs() << "grd: unknown solver kind '" << K << "'\n";
        return false;
      }
    } else if (Arg == "--cache") {
      Opts.Cache = true;
    } else if (startsWith(Arg, "--cache=")) {
      Opts.Cache = true;
      Opts.CacheDir = Arg.substr(8);
      if (Opts.CacheDir.empty()) {
        errs() << "grd: --cache= needs a directory (or plain --cache "
                  "for memory-only)\n";
        return false;
      }
    } else if (startsWith(Arg, "--deadline-ms=")) {
      uint64_t Ms;
      if (!parseResourceValue(Arg.substr(14), Ms)) {
        errs() << "grd: bad --deadline-ms value '" << Arg.substr(14)
               << "': want a non-negative decimal integer\n";
        return false;
      }
      Opts.DeadlineMs = static_cast<int64_t>(Ms);
    } else if (startsWith(Arg, "--max-mem=")) {
      if (!parseResourceValue(Arg.substr(10), Opts.MaxMem)) {
        errs() << "grd: bad --max-mem value '" << Arg.substr(10)
               << "': want a non-negative decimal integer\n";
        return false;
      }
    } else if (Arg == "--json") {
      Opts.Json = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return false;
    } else {
      errs() << "grd: unknown option '" << Arg << "'\n";
      usage();
      return false;
    }
  }
  return true;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return true;
}

/// Reads one full request line of arbitrary length (fgets with a
/// fixed buffer would silently split an over-long line into multiple
/// bogus path requests). Returns false at EOF with nothing read.
bool readRequestLine(std::string &Line) {
  Line.clear();
  char Buf[4096];
  while (std::fgets(Buf, sizeof(Buf), stdin)) {
    Line += Buf;
    if (!Line.empty() && Line.back() == '\n')
      return true;
  }
  return !Line.empty();
}

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Nearest-rank percentile over an unsorted sample.
double percentile(std::vector<double> Sample, double P) {
  if (Sample.empty())
    return 0.0;
  std::sort(Sample.begin(), Sample.end());
  std::size_t Rank =
      static_cast<std::size_t>(P * static_cast<double>(Sample.size()) + 0.999999);
  if (Rank < 1)
    Rank = 1;
  if (Rank > Sample.size())
    Rank = Sample.size();
  return Sample[Rank - 1];
}

struct Aggregate {
  uint64_t Served = 0;
  uint64_t Errors = 0;
  /// Per-ErrCode failure counters (support/Budget.h taxonomy); only
  /// nonzero codes are printed, as err.<name>=N / "err_<name>".
  uint64_t ErrCounts[NumErrCodes] = {};
  /// Served requests answered by the cache's module tier (request-level
  /// hits: the whole request skipped parse + solve) vs. served cold.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  double BusyMs = 0.0;
  std::vector<double> Latencies;
};

void printAggregate(const Aggregate &A, bool Json) {
  double P50 = percentile(A.Latencies, 0.50);
  double P99 = percentile(A.Latencies, 0.99);
  double Rate = A.BusyMs > 0.0
                    ? static_cast<double>(A.Served) / (A.BusyMs / 1000.0)
                    : 0.0;
  // The execution engine this process would run modules with — the
  // same GR_EXEC/GR_DISPATCH resolution gropt --run reports.
  const char *Exec = execKindName(resolveExecKind(ExecKind::Default));
  const char *Dispatch =
      dispatchModeName(resolveDispatchMode(DispatchMode::Default));
  // Structured-error breakdown, only for codes actually seen.
  std::string ErrBreakdown;
  for (unsigned C = 1; C != NumErrCodes; ++C) {
    if (!A.ErrCounts[C])
      continue;
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf),
                  Json ? ", \"err_%s\": %llu" : " err.%s=%llu",
                  errCodeName(static_cast<ErrCode>(C)),
                  static_cast<unsigned long long>(A.ErrCounts[C]));
    ErrBreakdown += Buf;
  }
  if (Json)
    std::printf("{\"stats\": true, \"served\": %llu, \"errors\": %llu, "
                "\"cache_hits\": %llu, \"cache_misses\": %llu, "
                "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"busy_ms\": %.3f, "
                "\"modules_per_s\": %.1f, \"exec\": \"%s\", "
                "\"dispatch\": \"%s\"%s}\n",
                static_cast<unsigned long long>(A.Served),
                static_cast<unsigned long long>(A.Errors),
                static_cast<unsigned long long>(A.CacheHits),
                static_cast<unsigned long long>(A.CacheMisses), P50, P99,
                A.BusyMs, Rate, Exec, Dispatch, ErrBreakdown.c_str());
  else
    std::printf("stats served=%llu errors=%llu cache_hits=%llu "
                "cache_misses=%llu p50_ms=%.3f p99_ms=%.3f "
                "busy_ms=%.3f modules_per_s=%.1f exec=%s dispatch=%s%s\n",
                static_cast<unsigned long long>(A.Served),
                static_cast<unsigned long long>(A.Errors),
                static_cast<unsigned long long>(A.CacheHits),
                static_cast<unsigned long long>(A.CacheMisses), P50, P99,
                A.BusyMs, Rate, Exec, Dispatch, ErrBreakdown.c_str());
  std::fflush(stdout);
}

/// The !cache-stats response: every DetectionCache counter, or a
/// cache-off marker when no cache is active.
void printCacheStats(bool Json) {
  DetectionCache *C = DetectionCache::active();
  if (!C) {
    std::printf(Json ? "{\"cache\": false}\n" : "cache off\n");
    std::fflush(stdout);
    return;
  }
  CacheCounters CC = C->counters();
  if (Json)
    std::printf("{\"cache\": true, \"hits\": %llu, \"misses\": %llu, "
                "\"function_hits\": %llu, \"function_misses\": %llu, "
                "\"function_stores\": %llu, \"module_hits\": %llu, "
                "\"module_misses\": %llu, \"module_stores\": %llu, "
                "\"disk_hits\": %llu, \"corrupt\": %llu, "
                "\"evictions\": %llu, \"disk_write_failures\": %llu}\n",
                static_cast<unsigned long long>(CC.hits()),
                static_cast<unsigned long long>(CC.misses()),
                static_cast<unsigned long long>(CC.FunctionHits),
                static_cast<unsigned long long>(CC.FunctionMisses),
                static_cast<unsigned long long>(CC.FunctionStores),
                static_cast<unsigned long long>(CC.ModuleHits),
                static_cast<unsigned long long>(CC.ModuleMisses),
                static_cast<unsigned long long>(CC.ModuleStores),
                static_cast<unsigned long long>(CC.DiskHits),
                static_cast<unsigned long long>(CC.CorruptEntries),
                static_cast<unsigned long long>(CC.Evictions),
                static_cast<unsigned long long>(CC.DiskWriteFailures));
  else
    std::printf("cache hits=%llu misses=%llu function=%llu/%llu/%llu "
                "module=%llu/%llu/%llu disk_hits=%llu corrupt=%llu "
                "evictions=%llu disk_write_failures=%llu\n",
                static_cast<unsigned long long>(CC.hits()),
                static_cast<unsigned long long>(CC.misses()),
                static_cast<unsigned long long>(CC.FunctionHits),
                static_cast<unsigned long long>(CC.FunctionMisses),
                static_cast<unsigned long long>(CC.FunctionStores),
                static_cast<unsigned long long>(CC.ModuleHits),
                static_cast<unsigned long long>(CC.ModuleMisses),
                static_cast<unsigned long long>(CC.ModuleStores),
                static_cast<unsigned long long>(CC.DiskHits),
                static_cast<unsigned long long>(CC.CorruptEntries),
                static_cast<unsigned long long>(CC.Evictions),
                static_cast<unsigned long long>(CC.DiskWriteFailures));
  std::fflush(stdout);
}

/// Escapes \p S for a JSON string literal (minimal: quotes,
/// backslashes, control bytes).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (unsigned char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += static_cast<char>(C);
    } else if (C < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += static_cast<char>(C);
    }
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;
  // --cache overrides the GR_CACHE/GR_CACHE_DIR environment
  // resolution; without it, the environment decides (docs/CACHING.md).
  if (Opts.Cache)
    DetectionCache::configure({Opts.CacheDir});

  // Warm the pool and the compiled specs before the first request so
  // request one is not billed for process-lifetime setup.
  (void)ThreadPool::global();
  if (resolveSolverKind(Opts.Solver) == SolverKind::Compiled)
    (void)IdiomRegistry::builtins().compiledSpecs();

  Aggregate Agg;
  std::string Line;
  while (readRequestLine(Line)) {
    while (!Line.empty() &&
           (Line.back() == '\n' || Line.back() == '\r' || Line.back() == ' '))
      Line.pop_back();
    while (!Line.empty() && Line.front() == ' ')
      Line.erase(Line.begin());
    if (Line.empty() || Line[0] == '#')
      continue;
    if (Line == "!quit")
      return 0;
    if (Line == "!stats") {
      printAggregate(Agg, Opts.Json);
      continue;
    }
    if (Line == "!cache-stats") {
      printCacheStats(Opts.Json);
      continue;
    }
    if (startsWith(Line, "!deadline-ms")) {
      // Runtime governor adjustment: `!deadline-ms <N|none>`. The
      // next request (same warm pool, same cache) runs under the new
      // envelope — the recovery half of the serving smoke.
      std::string V = Line.substr(12);
      while (!V.empty() && V.front() == ' ')
        V.erase(V.begin());
      uint64_t Ms;
      if (V == "none")
        Opts.DeadlineMs = -1;
      else if (parseResourceValue(V, Ms))
        Opts.DeadlineMs = static_cast<int64_t>(Ms);
      else {
        std::printf("error !deadline-ms: want a non-negative decimal "
                    "integer or 'none', got '%s'\n",
                    V.c_str());
        std::fflush(stdout);
        continue;
      }
      std::printf("ok !deadline-ms %s\n", V.c_str());
      std::fflush(stdout);
      continue;
    }

    double T0 = nowMs();
    BatchInput In;
    In.Name = Line;
    In.IsMiniC =
        Line.size() > 3 && Line.compare(Line.size() - 3, 3, ".mc") == 0;
    std::string Response;
    if (!readFile(Line, In.Text)) {
      ++Agg.Errors;
      ++Agg.ErrCounts[static_cast<unsigned>(ErrCode::IoError)];
      if (Opts.Json)
        Response = "{\"ok\": false, \"path\": \"" + jsonEscape(Line) +
                   "\", \"error\": \"cannot read file\"}";
      else
        Response = "error " + Line + ": cannot read file";
    } else {
      BatchOptions BO;
      BO.Workers = Opts.Workers;
      BO.Kind = Opts.Solver;
      BO.DeadlineMs = Opts.DeadlineMs;
      // A batch of one: module lane 1, all worker lanes spent at
      // function granularity inside the request.
      BatchResult R = runDetectionBatch({In}, BO);
      const BatchModuleResult &M = R.Modules.front();
      double Ms = nowMs() - T0;
      if (!M.Ok) {
        ++Agg.Errors;
        ErrCode Code = M.Code == ErrCode::Ok ? ErrCode::Internal : M.Code;
        ++Agg.ErrCounts[static_cast<unsigned>(Code)];
        if (Opts.Json)
          Response = "{\"ok\": false, \"path\": \"" + jsonEscape(Line) +
                     "\", \"code\": \"" + errCodeName(Code) +
                     "\", \"degraded\": " + (M.Degraded ? "true" : "false") +
                     ", \"error\": \"" + jsonEscape(M.Error) + "\"}";
        else
          Response = "error " + Line + ": " + M.Error +
                     (M.Degraded ? " degraded=1" : "");
      } else {
        ++Agg.Served;
        Agg.BusyMs += Ms;
        Agg.Latencies.push_back(Ms);
        // Request-level cache outcome: hit = the module tier answered
        // the whole request (no parse, no solve). Only meaningful with
        // an active cache; without one every request reports miss.
        if (M.FromCache)
          ++Agg.CacheHits;
        else
          ++Agg.CacheMisses;
        char Buf[256];
        if (Opts.Json) {
          std::snprintf(Buf, sizeof(Buf),
                        "\"functions\": %u, \"scalars\": %u, "
                        "\"histograms\": %u, \"scans\": %u, "
                        "\"argminmax\": %u, \"solutions\": %llu, "
                        "\"cache\": \"%s\", \"ms\": %.3f}",
                        M.Functions, M.Counts.Scalars, M.Counts.Histograms,
                        M.Counts.Scans, M.Counts.ArgMinMax,
                        static_cast<unsigned long long>(
                            M.Stats.totalSolutions()),
                        M.FromCache ? "hit" : "miss", Ms);
          Response = "{\"ok\": true, \"path\": \"" + jsonEscape(Line) +
                     "\", " + Buf;
        } else {
          std::snprintf(Buf, sizeof(Buf),
                        " functions=%u scalars=%u histograms=%u scans=%u "
                        "argminmax=%u solutions=%llu cache=%s ms=%.3f",
                        M.Functions, M.Counts.Scalars, M.Counts.Histograms,
                        M.Counts.Scans, M.Counts.ArgMinMax,
                        static_cast<unsigned long long>(
                            M.Stats.totalSolutions()),
                        M.FromCache ? "hit" : "miss", Ms);
          Response = "ok " + Line + Buf;
        }
      }
    }
    std::printf("%s\n", Response.c_str());
    std::fflush(stdout);
  }
  printAggregate(Agg, Opts.Json);
  return 0;
}
