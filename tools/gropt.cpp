//===- gropt.cpp - opt-style driver over textual IR -----------*- C++ -*-===//
///
/// \file
/// The standalone entry point of the textual IR subsystem: reads a
/// .gr file, a MiniC .mc source, or stdin, runs pass pipelines /
/// idiom detection / the execution engines over it, and reprints the
/// result. This is the path external workloads take into the system —
/// everything the C++-embedded drivers can do, from a file on disk.
///
///   gropt input.gr                       parse, verify, reprint
///   gropt input.gr --detect              idiom detection + solver stats
///   gropt input.gr -passes=ssa,detect    run a pass pipeline
///   gropt input.gr --run                 execute main on the VM
///   gropt input.gr -o out.gr             reprint into a file
///   gropt kernel.mc --detect --run       compile MiniC, detect, execute
///   gropt kernel.mc --dump-ir            print the lowered .gr text
///   gropt --batch DIR                    batched detection over DIR/*.{gr,mc}
///   gropt --batch LIST                   ... or over paths listed in a file
///   gropt --dump-corpus DIR              write the benchmark corpus as .gr
///   gropt --corpus-roundtrip DIR         dump + reparse + differential check
///
/// Switches: --solver=compiled|reference, --exec=bytecode|reference,
/// --workers=N (parallel/batch detection; 0 = auto), --cache[=DIR]
/// (content-addressed detection cache, memory-only or backed by DIR;
/// see docs/CACHING.md), --json (machine-readable stats),
/// --verify-only, --run=FUNC.
///
//===----------------------------------------------------------------------===//

#include "cache/DetectionCache.h"
#include "corpus/Corpus.h"
#include "frontend/Compiler.h"
#include "idioms/ReductionAnalysis.h"
#include "interp/Bytecode.h"
#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "pass/BatchDriver.h"
#include "pass/ParallelDriver.h"
#include "pass/PassManager.h"
#include "pass/Pipeline.h"
#include "runtime/SimulatedParallel.h"
#include "runtime/ThreadedRunner.h"
#include "support/Budget.h"
#include "support/OStream.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "transform/ArgMinMaxParallelize.h"
#include "transform/CSE.h"
#include "transform/DCE.h"
#include "transform/Mem2Reg.h"
#include "transform/ReductionParallelize.h"
#include "transform/ScanParallelize.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

using namespace gr;

namespace {

//===----------------------------------------------------------------------===//
// Small file and string helpers
//===----------------------------------------------------------------------===//

bool readFile(const std::string &Path, std::string &Out) {
  std::FILE *F =
      (Path == "-") ? stdin : std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  if (F != stdin)
    std::fclose(F);
  return true;
}

bool writeFile(const std::string &Path, const std::string &Data) {
  std::FILE *F =
      (Path == "-") ? stdout : std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  std::fwrite(Data.data(), 1, Data.size(), F);
  if (F != stdout)
    std::fclose(F);
  return true;
}

std::string sanitizeFileName(std::string Name) {
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

bool hasSuffix(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

/// `.mc` files are MiniC source; everything else is textual IR.
bool isMiniCPath(const std::string &Path) { return hasSuffix(Path, ".mc"); }

/// Module name for a compiled MiniC input: the basename without its
/// extension ("corpus/minic/hotspot.mc" -> "hotspot", "-" -> "stdin").
std::string moduleNameFromPath(const std::string &Path) {
  if (Path == "-")
    return "stdin";
  size_t Slash = Path.find_last_of('/');
  std::string Base = Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  size_t Dot = Base.find_last_of('.');
  if (Dot != std::string::npos && Dot > 0)
    Base.resize(Dot);
  return Base.empty() ? "module" : Base;
}

/// Insertion-ordered flat JSON object writer.
class JsonObject {
public:
  void add(const std::string &Key, uint64_t V) {
    Fields.emplace_back(Key, std::to_string(V));
  }
  void add(const std::string &Key, int64_t V) {
    Fields.emplace_back(Key, std::to_string(V));
  }
  void addStr(const std::string &Key, const std::string &V) {
    std::string Escaped = "\"";
    for (unsigned char C : V) {
      if (C == '"' || C == '\\') {
        Escaped += '\\';
        Escaped += static_cast<char>(C);
      } else if (C < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Escaped += "\\u00";
        Escaped += Hex[C >> 4];
        Escaped += Hex[C & 15];
      } else {
        Escaped += static_cast<char>(C);
      }
    }
    Escaped += '"';
    Fields.emplace_back(Key, Escaped);
  }
  /// Adds \p V verbatim (caller guarantees valid JSON).
  void addRaw(const std::string &Key, const std::string &V) {
    Fields.emplace_back(Key, V);
  }
  std::string str() const {
    std::string Out = "{";
    for (size_t I = 0; I < Fields.size(); ++I) {
      if (I)
        Out += ", ";
      Out += "\"" + Fields[I].first + "\": " + Fields[I].second;
    }
    Out += "}";
    return Out;
  }

private:
  std::vector<std::pair<std::string, std::string>> Fields;
};

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

struct Options {
  std::string Input;
  std::string Output;          ///< -o FILE ('-' = stdout)
  std::vector<std::string> Passes;
  bool Detect = false;
  bool Run = false;
  std::string RunFunc = "main";
  bool VerifyOnly = false;
  bool Json = false;
  /// --minic: treat the input as MiniC source regardless of extension
  /// (a `.mc` suffix opts in automatically). The frontend lowers and
  /// runs mem2reg/CSE/DCE before any other action sees the module.
  bool MiniC = false;
  /// --dump-ir: print the module as .gr after parsing/lowering (and
  /// after any -passes pipeline), even when other actions run.
  bool DumpIR = false;
  unsigned Workers = 1;
  unsigned Threads = 0; ///< --threads: chunks for the threaded --run

  SolverKind Solver = SolverKind::Default;
  ExecKind Exec = ExecKind::Default;
  std::string DumpCorpusDir;
  std::string RoundTripDir;
  std::string BatchArg; ///< --batch: directory of .gr files or a list file
  bool Cache = false;   ///< --cache[=DIR]: enable the detection cache
  std::string CacheDir; ///< on-disk tier root; empty = memory-only
  /// Wall-clock deadline in ms for --detect / --batch (per module) and
  /// --run; negative = ungoverned, 0 = already expired (deterministic
  /// degradation smoke).
  int64_t DeadlineMs = -1;
  /// Interpreter arena-memory ceiling in bytes for --run; 0 = none.
  uint64_t MaxMem = 0;
};

void usage() {
  errs() << "usage: gropt [options] <input.gr | input.mc | ->\n"
         << "  -passes=p1,p2,...     mem2reg, cse, dce, ssa, detect,\n"
         << "                        parallelize-reductions, parallelize-scans,\n"
         << "                        parallelize-argminmax, parallelize, default\n"
         << "  --detect              run idiom detection, print totals + stats\n"
         << "  --run[=FUNC]          execute FUNC() (default: main)\n"
         << "  --solver=KIND         default | compiled | reference\n"
         << "  --exec=KIND           default | bytecode | reference\n"
         << "  --workers=N           detection worker lanes (0 = auto)\n"
         << "  --threads=N           threads for --run of a parallelized\n"
         << "                        module (0 = auto); also runs the\n"
         << "                        simulated model for comparison\n"
         << "  --cache[=DIR]         detection cache: memory-only, or\n"
         << "                        memory over an on-disk tier at DIR\n"
         << "  --deadline-ms=N       wall-clock budget: per-module for\n"
         << "                        --detect/--batch, whole-run for --run;\n"
         << "                        exhaustion is a structured error\n"
         << "                        (docs/ROBUSTNESS.md), never a hang\n"
         << "  --max-mem=BYTES       interpreter memory ceiling for --run\n"
         << "  --minic               input is MiniC source (implied by .mc)\n"
         << "  --dump-ir             print the lowered module as .gr even\n"
         << "                        when --detect/--run/-passes also run\n"
         << "  --batch DIR|LIST      batched detection: every .gr/.mc under\n"
         << "                        DIR, or the paths listed in file LIST\n"
         << "  -o FILE               reprint the module ('-' = stdout)\n"
         << "  --json                machine-readable stats on stdout\n"
         << "  --verify-only         parse + verify, print OK\n"
         << "  --dump-corpus DIR     write the benchmark corpus as .gr files\n"
         << "  --corpus-roundtrip DIR  dump + reparse + differential check\n";
}

/// Strict decimal parse for resource flags: junk exits 1 at the call
/// sites (a misconfigured governor must not silently run ungoverned).
bool parseResourceValue(const std::string &Text, uint64_t &Out) {
  auto V = parseInt(Text);
  if (!V || *V < 0)
    return false;
  Out = static_cast<uint64_t>(*V);
  return true;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (startsWith(Arg, "-passes=")) {
      std::string List = Arg.substr(8); // splitString returns views.
      for (std::string_view P : splitString(List, ','))
        if (!P.empty())
          Opts.Passes.emplace_back(P);
    } else if (Arg == "--detect") {
      Opts.Detect = true;
    } else if (Arg == "--run") {
      Opts.Run = true;
    } else if (startsWith(Arg, "--run=")) {
      Opts.Run = true;
      Opts.RunFunc = Arg.substr(6);
    } else if (startsWith(Arg, "--solver=")) {
      std::string K = Arg.substr(9);
      if (K == "compiled")
        Opts.Solver = SolverKind::Compiled;
      else if (K == "reference")
        Opts.Solver = SolverKind::Reference;
      else if (K == "default")
        Opts.Solver = SolverKind::Default;
      else {
        errs() << "gropt: unknown solver kind '" << K << "'\n";
        return false;
      }
    } else if (startsWith(Arg, "--exec=")) {
      std::string K = Arg.substr(7);
      if (K == "bytecode")
        Opts.Exec = ExecKind::Bytecode;
      else if (K == "reference")
        Opts.Exec = ExecKind::Reference;
      else if (K == "default")
        Opts.Exec = ExecKind::Default;
      else {
        errs() << "gropt: unknown exec kind '" << K << "'\n";
        return false;
      }
    } else if (startsWith(Arg, "--workers=")) {
      std::string Err;
      auto N = parseWorkerCount(Arg.substr(10), &Err);
      if (!N) {
        errs() << "gropt: bad --workers value: " << Err << '\n';
        return false;
      }
      Opts.Workers = *N;
    } else if (startsWith(Arg, "--threads=")) {
      std::string Err;
      auto N = parseWorkerCount(Arg.substr(10), &Err);
      if (!N) {
        errs() << "gropt: bad --threads value: " << Err << '\n';
        return false;
      }
      Opts.Threads = *N;
    } else if (startsWith(Arg, "--deadline-ms=")) {
      uint64_t Ms;
      if (!parseResourceValue(Arg.substr(14), Ms)) {
        errs() << "gropt: bad --deadline-ms value '" << Arg.substr(14)
               << "': want a non-negative decimal integer\n";
        return false;
      }
      Opts.DeadlineMs = static_cast<int64_t>(Ms);
    } else if (startsWith(Arg, "--max-mem=")) {
      if (!parseResourceValue(Arg.substr(10), Opts.MaxMem)) {
        errs() << "gropt: bad --max-mem value '" << Arg.substr(10)
               << "': want a non-negative decimal integer\n";
        return false;
      }
    } else if (Arg == "--cache") {
      Opts.Cache = true;
    } else if (startsWith(Arg, "--cache=")) {
      Opts.Cache = true;
      Opts.CacheDir = Arg.substr(8);
      if (Opts.CacheDir.empty()) {
        errs() << "gropt: --cache= needs a directory (or plain --cache "
                  "for memory-only)\n";
        return false;
      }
    } else if (Arg == "--batch") {
      if (++I >= Argc) {
        errs() << "gropt: --batch needs a directory or list file\n";
        return false;
      }
      Opts.BatchArg = Argv[I];
    } else if (Arg == "-o") {
      if (++I >= Argc) {
        errs() << "gropt: -o needs a file\n";
        return false;
      }
      Opts.Output = Argv[I];
    } else if (Arg == "--json") {
      Opts.Json = true;
    } else if (Arg == "--minic") {
      Opts.MiniC = true;
    } else if (Arg == "--dump-ir") {
      Opts.DumpIR = true;
    } else if (Arg == "--verify-only") {
      Opts.VerifyOnly = true;
    } else if (Arg == "--dump-corpus") {
      if (++I >= Argc) {
        errs() << "gropt: --dump-corpus needs a directory\n";
        return false;
      }
      Opts.DumpCorpusDir = Argv[I];
    } else if (Arg == "--corpus-roundtrip") {
      if (++I >= Argc) {
        errs() << "gropt: --corpus-roundtrip needs a directory\n";
        return false;
      }
      Opts.RoundTripDir = Argv[I];
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return false;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      errs() << "gropt: unknown option '" << Arg << "'\n";
      usage();
      return false;
    } else {
      if (!Opts.Input.empty()) {
        errs() << "gropt: multiple inputs\n";
        return false;
      }
      Opts.Input = Arg;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Pass pipeline
//===----------------------------------------------------------------------===//

/// Builds the -passes= pipeline. Detection results land in \p Reports
/// and \p Stats; \p RP (created lazily) serves the parallelize passes.
bool buildPipeline(const Options &Opts, Module &M,
                   FunctionAnalysisManager &FAM, ModulePassManager &MPM,
                   std::vector<ReductionReport> *Reports,
                   DetectionStats *Stats,
                   std::unique_ptr<ReductionParallelizer> &RP) {
  auto parallelizer = [&]() -> ReductionParallelizer & {
    if (!RP)
      RP = std::make_unique<ReductionParallelizer>(M, FAM);
    return *RP;
  };
  for (const std::string &P : Opts.Passes) {
    if (P == "mem2reg") {
      MPM.addFunctionPass(std::make_unique<PromoteAllocasPass>());
    } else if (P == "cse") {
      MPM.addFunctionPass(std::make_unique<CSEPass>());
    } else if (P == "dce") {
      MPM.addFunctionPass(std::make_unique<DCEPass>());
    } else if (P == "ssa") {
      MPM.addFunctionPass(std::make_unique<PromoteAllocasPass>());
      MPM.addFunctionPass(std::make_unique<CSEPass>());
      MPM.addFunctionPass(std::make_unique<DCEPass>());
    } else if (P == "detect") {
      MPM.addPass(std::make_unique<ReductionDetectionPass>(Reports, Stats,
                                                           Opts.Workers));
    } else if (P == "default") {
      MPM.addFunctionPass(std::make_unique<PromoteAllocasPass>());
      MPM.addFunctionPass(std::make_unique<CSEPass>());
      MPM.addFunctionPass(std::make_unique<DCEPass>());
      MPM.addPass(std::make_unique<ReductionDetectionPass>(Reports, Stats,
                                                           Opts.Workers));
    } else if (P == "parallelize-reductions") {
      MPM.addFunctionPass(
          std::make_unique<ParallelizeReductionsPass>(parallelizer()));
    } else if (P == "parallelize-scans") {
      MPM.addFunctionPass(
          std::make_unique<ScanParallelizePass>(parallelizer()));
    } else if (P == "parallelize-argminmax") {
      MPM.addFunctionPass(
          std::make_unique<ArgMinMaxParallelizePass>(parallelizer()));
    } else if (P == "parallelize") {
      MPM.addFunctionPass(
          std::make_unique<ParallelizeReductionsPass>(parallelizer()));
      MPM.addFunctionPass(
          std::make_unique<ScanParallelizePass>(parallelizer()));
      MPM.addFunctionPass(
          std::make_unique<ArgMinMaxParallelizePass>(parallelizer()));
    } else {
      errs() << "gropt: unknown pass '" << P << "'\n";
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Detection reporting
//===----------------------------------------------------------------------===//

struct DetectionSummary {
  unsigned Functions = 0;
  unsigned ForLoops = 0;
  ReductionCounts Counts;
  DetectionStats Stats;
  /// Functions whose reports are partial because the --deadline-ms
  /// budget tripped; Code names the cause. A degraded detection exits
  /// nonzero after printing what it found.
  unsigned DegradedFunctions = 0;
  ErrCode Code = ErrCode::Ok;
};

DetectionSummary summarizeReports(const std::vector<ReductionReport> &Reports,
                                  const DetectionStats &Stats) {
  DetectionSummary S;
  S.Functions = static_cast<unsigned>(Reports.size());
  for (const ReductionReport &Rep : Reports)
    S.ForLoops += static_cast<unsigned>(Rep.ForLoops.size());
  S.Counts = countReductions(Reports);
  S.Stats = Stats;
  return S;
}

DetectionSummary detect(Module &M, const Options &Opts) {
  ParallelDetectionOptions PD;
  PD.Workers = Opts.Workers; // 0 = auto (hardware concurrency)
  PD.Kind = Opts.Solver;
  Budget Bdgt;
  if (Opts.DeadlineMs >= 0) {
    Bdgt.setDeadlineMs(static_cast<uint64_t>(Opts.DeadlineMs));
    PD.Bdgt = &Bdgt;
  }
  ParallelDetectionResult R = analyzeModuleParallel(M, PD);
  DetectionSummary S = summarizeReports(R.Reports, R.Stats);
  S.DegradedFunctions = R.DegradedFunctions;
  if (S.DegradedFunctions > 0)
    S.Code = Bdgt.tripped() == ErrCode::Ok ? ErrCode::DeadlineExceeded
                                           : Bdgt.tripped();
  return S;
}

void printDetection(OStream &OS, const Module &M,
                    const DetectionSummary &S) {
  OS << "=== detection: " << M.getName() << " ===\n"
     << "functions analyzed:   " << S.Functions << '\n'
     << "for loops:            " << S.ForLoops << '\n'
     << "scalar reductions:    " << S.Counts.Scalars << '\n'
     << "histogram reductions: " << S.Counts.Histograms << '\n'
     << "scans:                " << S.Counts.Scans << '\n'
     << "argmin/argmax:        " << S.Counts.ArgMinMax << '\n'
     << "solver totals: nodes=" << S.Stats.totalNodes()
     << " candidates=" << S.Stats.totalCandidates()
     << " solutions=" << S.Stats.totalSolutions() << '\n';
  for (const auto &[Name, PS] : S.Stats.PerIdiom)
    OS << "  " << Name << ": nodes=" << PS.NodesVisited
       << " candidates=" << PS.CandidatesTried
       << " solutions=" << PS.Solutions << '\n';
}

/// Cache counters for --json: present only when a cache is active, so
/// cache-off output stays byte-compatible with pre-cache releases.
void addCacheJson(JsonObject &J) {
  DetectionCache *C = DetectionCache::active();
  if (!C)
    return;
  CacheCounters CC = C->counters();
  J.add("cache_hits", CC.hits());
  J.add("cache_misses", CC.misses());
  J.add("cache_function_hits", CC.FunctionHits);
  J.add("cache_function_misses", CC.FunctionMisses);
  J.add("cache_module_hits", CC.ModuleHits);
  J.add("cache_module_misses", CC.ModuleMisses);
  J.add("cache_disk_hits", CC.DiskHits);
  J.add("cache_corrupt", CC.CorruptEntries);
  J.add("cache_evictions", CC.Evictions);
  J.add("cache_disk_write_failures", CC.DiskWriteFailures);
}

/// The text-mode twin of addCacheJson.
void printCacheLine(OStream &OS) {
  DetectionCache *C = DetectionCache::active();
  if (!C)
    return;
  CacheCounters CC = C->counters();
  OS << "cache: hits=" << CC.hits() << " misses=" << CC.misses()
     << " (function " << CC.FunctionHits << '/' << CC.FunctionMisses
     << ", module " << CC.ModuleHits << '/' << CC.ModuleMisses
     << ", disk " << CC.DiskHits << ") evictions=" << CC.Evictions
     << " corrupt=" << CC.CorruptEntries
     << " disk_write_failures=" << CC.DiskWriteFailures << '\n';
}

void addDetectionJson(JsonObject &J, const DetectionSummary &S) {
  J.add("functions", static_cast<uint64_t>(S.Functions));
  J.add("for_loops", static_cast<uint64_t>(S.ForLoops));
  J.add("scalars", static_cast<uint64_t>(S.Counts.Scalars));
  J.add("histograms", static_cast<uint64_t>(S.Counts.Histograms));
  J.add("scans", static_cast<uint64_t>(S.Counts.Scans));
  J.add("argminmax", static_cast<uint64_t>(S.Counts.ArgMinMax));
  J.add("solver_nodes", S.Stats.totalNodes());
  J.add("solver_candidates", S.Stats.totalCandidates());
  J.add("solver_solutions", S.Stats.totalSolutions());
}

//===----------------------------------------------------------------------===//
// Corpus dump + round-trip harness
//===----------------------------------------------------------------------===//

/// Frontend-compiled sample programs included in the dump alongside
/// the 40 benchmark kernels.
struct FrontendSample {
  const char *Name;
  const char *Source;
};

const FrontendSample FrontendSamples[] = {
    {"frontend_scalar_sum", R"(
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 1000; i++)
    s = s + i;
  return s;
})"},
    {"frontend_histogram", R"(
int hist[32];
int keys[256];
int main() {
  int i;
  for (i = 0; i < 256; i++)
    keys[i] = (i * 7) % 32;
  for (i = 0; i < 256; i++)
    hist[keys[i]] = hist[keys[i]] + 1;
  return hist[3];
})"},
    {"frontend_float_math", R"(
int main() {
  int i;
  double acc = 0.0;
  for (i = 1; i < 100; i++)
    acc = acc + sqrt(1.0 * i) / (0.5 + i);
  print_f64(acc);
  return acc;
})"},
};

struct CorpusEntry {
  std::string FileName;
  std::string DisplayName;
  std::unique_ptr<Module> M;
};

/// Compiles every corpus benchmark and frontend sample.
bool buildCorpusModules(std::vector<CorpusEntry> &Out) {
  for (const BenchmarkProgram &B : corpus()) {
    std::string Error;
    auto M = compileMiniC(B.Source, B.Name, &Error);
    if (!M) {
      errs() << "gropt: " << B.Name << ": compile failed: " << Error
             << '\n';
      return false;
    }
    CorpusEntry E;
    E.FileName = sanitizeFileName(std::string(B.Suite) + "_" + B.Name) +
                 ".gr";
    E.DisplayName = std::string(B.Suite) + "/" + B.Name;
    E.M = std::move(M);
    Out.push_back(std::move(E));
  }
  for (const FrontendSample &S : FrontendSamples) {
    std::string Error;
    auto M = compileMiniC(S.Source, S.Name, &Error);
    if (!M) {
      errs() << "gropt: " << S.Name << ": compile failed: " << Error
             << '\n';
      return false;
    }
    CorpusEntry E;
    E.FileName = sanitizeFileName(S.Name) + ".gr";
    E.DisplayName = S.Name;
    E.M = std::move(M);
    Out.push_back(std::move(E));
  }
  return true;
}

int dumpCorpus(const std::string &Dir, bool Quiet) {
  std::vector<CorpusEntry> Entries;
  if (!buildCorpusModules(Entries))
    return 1;
  for (const CorpusEntry &E : Entries) {
    std::string Path = Dir + "/" + E.FileName;
    if (!writeFile(Path, moduleToString(*E.M))) {
      errs() << "gropt: cannot write " << Path << '\n';
      return 1;
    }
  }
  if (!Quiet)
    outs() << "dumped " << static_cast<uint64_t>(Entries.size())
           << " modules to " << Dir << '\n';
  return 0;
}

struct RunObservation {
  int64_t Main = 0;
  std::string Output;
  ExecProfile Profile;
};

RunObservation observe(Module &M) {
  Interpreter I(M);
  I.setStepLimit(200000000);
  RunObservation R;
  R.Main = I.runMain();
  R.Output = I.getOutput();
  R.Profile = I.getProfile();
  return R;
}

/// The snapshot harness: dump every corpus + frontend module to DIR,
/// read each .gr back from disk, and differentially check (a) the
/// print->parse->print fixed point, (b) idiom detection totals and
/// solver statistics, (c) VM execution observables, against the
/// in-memory originals. Exits nonzero on any divergence, and on a
/// vacuously idiom-free corpus.
int corpusRoundTrip(const std::string &Dir) {
  std::vector<CorpusEntry> Entries;
  if (!buildCorpusModules(Entries))
    return 1;

  unsigned Failures = 0;
  uint64_t TotalIdioms = 0;
  for (CorpusEntry &E : Entries) {
    std::string Path = Dir + "/" + E.FileName;
    std::string T1 = moduleToString(*E.M);
    if (!writeFile(Path, T1)) {
      errs() << "gropt: cannot write " << Path << '\n';
      return 1;
    }
    std::string FromDisk;
    if (!readFile(Path, FromDisk) || FromDisk != T1) {
      errs() << E.DisplayName << ": dumped file does not match\n";
      ++Failures;
      continue;
    }
    IRParseError Err;
    auto Parsed = parseIR(FromDisk, &Err);
    if (!Parsed) {
      errs() << E.DisplayName << ": reparse failed: " << Err.str() << '\n';
      ++Failures;
      continue;
    }
    if (moduleToString(*Parsed) != T1) {
      errs() << E.DisplayName << ": print->parse->print not a fixed point\n";
      ++Failures;
      continue;
    }

    DetectionStats SA, SB;
    ReductionCounts CA = countReductions(analyzeModule(*E.M, &SA));
    ReductionCounts CB = countReductions(analyzeModule(*Parsed, &SB));
    if (CA.Scalars != CB.Scalars || CA.Histograms != CB.Histograms ||
        CA.Scans != CB.Scans || CA.ArgMinMax != CB.ArgMinMax ||
        SA != SB) {
      errs() << E.DisplayName << ": detection diverged after reparse\n";
      ++Failures;
      continue;
    }
    TotalIdioms += CA.Scalars + CA.Histograms + CA.Scans + CA.ArgMinMax;

    RunObservation A = observe(*E.M);
    RunObservation B = observe(*Parsed);
    if (A.Main != B.Main || A.Output != B.Output ||
        !(A.Profile == B.Profile)) {
      errs() << E.DisplayName << ": execution diverged after reparse\n";
      ++Failures;
      continue;
    }
  }

  OStream &OS = outs();
  OS << "corpus-roundtrip: programs=" << static_cast<uint64_t>(Entries.size())
     << " failures=" << static_cast<uint64_t>(Failures)
     << " idioms=" << TotalIdioms << " "
     << (Failures == 0 && TotalIdioms > 0 ? "roundtrip=OK"
                                          : "roundtrip=FAIL")
     << '\n';
  return (Failures == 0 && TotalIdioms > 0) ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// Batched detection (--batch)
//===----------------------------------------------------------------------===//

/// Collects the batch inputs named by \p Arg: every `.gr` or `.mc`
/// file directly under it when it is a directory (sorted by name, so
/// runs are reproducible), else the paths it lists one per line
/// (blank lines and `#` comments skipped).
bool collectBatchPaths(const std::string &Arg,
                       std::vector<std::string> &Paths) {
  struct stat St;
  if (::stat(Arg.c_str(), &St) != 0) {
    errs() << "gropt: --batch: cannot stat " << Arg << '\n';
    return false;
  }
  if (S_ISDIR(St.st_mode)) {
    DIR *D = ::opendir(Arg.c_str());
    if (!D) {
      errs() << "gropt: --batch: cannot open directory " << Arg << '\n';
      return false;
    }
    while (struct dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (hasSuffix(Name, ".gr") || isMiniCPath(Name))
        Paths.push_back(Arg + "/" + Name);
    }
    ::closedir(D);
    std::sort(Paths.begin(), Paths.end());
    return true;
  }
  std::string List;
  if (!readFile(Arg, List)) {
    errs() << "gropt: --batch: cannot read list file " << Arg << '\n';
    return false;
  }
  for (std::string_view Line : splitString(List, '\n')) {
    while (!Line.empty() && (Line.back() == '\r' || Line.back() == ' '))
      Line.remove_suffix(1);
    while (!Line.empty() && Line.front() == ' ')
      Line.remove_prefix(1);
    if (Line.empty() || Line.front() == '#')
      continue;
    Paths.emplace_back(Line);
  }
  return true;
}

int runBatch(const Options &Opts) {
  std::vector<std::string> Paths;
  if (!collectBatchPaths(Opts.BatchArg, Paths))
    return 1;
  if (Paths.empty()) {
    errs() << "gropt: --batch: no .gr/.mc inputs under " << Opts.BatchArg
           << '\n';
    return 1;
  }

  std::vector<BatchInput> Inputs;
  Inputs.reserve(Paths.size());
  unsigned Unreadable = 0;
  for (const std::string &P : Paths) {
    BatchInput In;
    In.Name = P;
    In.IsMiniC = isMiniCPath(P);
    if (!readFile(P, In.Text)) {
      errs() << "gropt: --batch: cannot read " << P << '\n';
      ++Unreadable;
      continue;
    }
    Inputs.push_back(std::move(In));
  }

  BatchOptions BO;
  BO.Workers = Opts.Workers;
  BO.Kind = Opts.Solver;
  BO.DeadlineMs = Opts.DeadlineMs;
  BatchResult R = runDetectionBatch(Inputs, BO);

  OStream &OS = outs();
  if (Opts.Json) {
    JsonObject J;
    J.add("modules", static_cast<uint64_t>(Inputs.size()));
    J.add("succeeded", R.Succeeded);
    J.add("failed", R.Failed + Unreadable);
    J.add("workers", static_cast<uint64_t>(R.WorkersUsed));
    J.add("module_lanes", static_cast<uint64_t>(R.ModuleLanes));
    J.add("function_workers", static_cast<uint64_t>(R.FunctionWorkers));
    J.add("module_steals", R.ModuleSteals);
    J.addRaw("wall_ms", formatDouble(R.WallMs, 3));
    J.addRaw("p50_ms", formatDouble(R.P50Ms, 3));
    J.addRaw("p99_ms", formatDouble(R.P99Ms, 3));
    J.addRaw("modules_per_s", formatDouble(R.ModulesPerSec, 1));
    J.add("solver_nodes", R.Stats.totalNodes());
    J.add("solver_candidates", R.Stats.totalCandidates());
    J.add("solver_solutions", R.Stats.totalSolutions());
    if (DetectionCache::active()) {
      J.add("module_cache_hits", R.ModuleCacheHits);
      J.add("function_cache_hits", R.FunctionCacheHits);
      addCacheJson(J);
    }
    OS << J.str() << '\n';
  } else {
    for (const BatchModuleResult &M : R.Modules) {
      if (!M.Ok) {
        OS << "error  " << M.Name << ": " << M.Error
           << (M.Degraded ? " degraded=1" : "") << '\n';
        continue;
      }
      OS << "ok     " << M.Name << "  functions=" << M.Functions
         << " scalars=" << M.Counts.Scalars
         << " histograms=" << M.Counts.Histograms
         << " scans=" << M.Counts.Scans
         << " argminmax=" << M.Counts.ArgMinMax << " ms="
         << formatDouble(M.TotalMs, 3) << '\n';
    }
    OS << "=== batch: " << static_cast<uint64_t>(Inputs.size())
       << " modules, " << R.Succeeded << " ok, "
       << (R.Failed + Unreadable) << " failed ===\n"
       << "workers: " << R.WorkersUsed << " (" << R.ModuleLanes
       << " module lanes x " << R.FunctionWorkers
       << " function workers, " << R.ModuleSteals << " steals)\n"
       << "wall: " << formatDouble(R.WallMs, 3) << " ms   p50: "
       << formatDouble(R.P50Ms, 3) << " ms   p99: "
       << formatDouble(R.P99Ms, 3) << " ms   throughput: "
       << formatDouble(R.ModulesPerSec, 1) << " modules/s\n";
    printCacheLine(OS);
  }
  return (R.Failed + Unreadable) == 0 ? 0 : 1;
}

} // namespace

//===----------------------------------------------------------------------===//
// main
//===----------------------------------------------------------------------===//

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;
  // --cache overrides the GR_CACHE/GR_CACHE_DIR environment
  // resolution; without it, the environment decides (docs/CACHING.md).
  if (Opts.Cache)
    DetectionCache::configure({Opts.CacheDir});
  OStream &OS = outs();

  if (!Opts.DumpCorpusDir.empty())
    return dumpCorpus(Opts.DumpCorpusDir, Opts.Json);
  if (!Opts.RoundTripDir.empty())
    return corpusRoundTrip(Opts.RoundTripDir);
  if (!Opts.BatchArg.empty())
    return runBatch(Opts);

  if (Opts.Input.empty()) {
    usage();
    return 1;
  }

  std::string Text;
  if (!readFile(Opts.Input, Text)) {
    errs() << "gropt: cannot read " << Opts.Input << '\n';
    return 1;
  }

  // Input-kind dispatch: MiniC sources go through the frontend (lex,
  // parse, lower, then mem2reg/CSE/DCE inside compileMiniC) so every
  // downstream action sees the same canonical SSA a .gr file would.
  std::unique_ptr<Module> M;
  if (Opts.MiniC || isMiniCPath(Opts.Input)) {
    std::string CompileErr;
    M = compileMiniC(Text, moduleNameFromPath(Opts.Input), &CompileErr);
    if (!M) {
      errs() << "gropt: " << Opts.Input << ":" << CompileErr << '\n';
      return 1;
    }
  } else {
    IRParseError Err;
    M = parseIR(Text, &Err);
    if (!M) {
      errs() << "gropt: " << Opts.Input << ":" << Err.str() << '\n';
      return 1;
    }
  }

  if (Opts.VerifyOnly) {
    // parseIR / compileMiniC already verified; report and stop.
    OS << "OK: " << M->getName() << " ("
       << static_cast<uint64_t>(M->functions().size()) << " functions)\n";
    return 0;
  }

  JsonObject Json;
  Json.addStr("module", M->getName());

  // Pass pipeline.
  FunctionAnalysisManager FAM;
  std::vector<ReductionReport> PipelineReports;
  DetectionStats PipelineStats;
  std::unique_ptr<ReductionParallelizer> RP;
  bool PipelineDetected = false;
  if (!Opts.Passes.empty()) {
    ModulePassManager MPM;
    if (!buildPipeline(Opts, *M, FAM, MPM, &PipelineReports, &PipelineStats,
                       RP))
      return 1;
    MPM.run(*M, FAM);
    for (const std::string &P : Opts.Passes)
      if (P == "detect" || P == "default")
        PipelineDetected = true;
    std::vector<std::string> VErrs;
    if (!verifyModule(*M, &VErrs)) {
      errs() << "gropt: module invalid after -passes: "
             << (VErrs.empty() ? "unknown error" : VErrs.front()) << '\n';
      return 1;
    }
  }

  // --dump-ir: the module as .gr text, after lowering and any -passes
  // pipeline but before detection/execution output. With nothing else
  // requested this matches the default reprint.
  if (Opts.DumpIR)
    OS << moduleToString(*M);

  // Detection: --detect runs it (on the possibly transformed module);
  // otherwise a detect pass scheduled via -passes= reports what it
  // already collected instead of discarding it.
  int ExitCode = 0;
  if (Opts.Detect) {
    DetectionSummary S = detect(*M, Opts);
    if (Opts.Json) {
      addDetectionJson(Json, S);
      addCacheJson(Json);
      if (S.DegradedFunctions > 0) {
        Json.add("degraded_functions",
                 static_cast<uint64_t>(S.DegradedFunctions));
        Json.addStr("code", errCodeName(S.Code));
      }
    } else {
      printDetection(OS, *M, S);
      printCacheLine(OS);
      if (S.DegradedFunctions > 0)
        OS << "degraded: functions=" << S.DegradedFunctions
           << " code=" << errCodeName(S.Code) << '\n';
    }
    // Partial results printed above are a sound subset; the nonzero
    // exit tells scripted callers not to treat them as the full
    // answer.
    if (S.DegradedFunctions > 0)
      ExitCode = 1;
  } else if (PipelineDetected) {
    DetectionSummary S = summarizeReports(PipelineReports, PipelineStats);
    if (Opts.Json) {
      addDetectionJson(Json, S);
      addCacheJson(Json);
    } else {
      printDetection(OS, *M, S);
      printCacheLine(OS);
    }
  }

  // Execution.
  if (Opts.Run) {
    Function *F = M->getFunction(Opts.RunFunc);
    if (!F || F->isDeclaration()) {
      errs() << "gropt: no function '@" << Opts.RunFunc << "' to run\n";
      return 1;
    }
    if (F->getNumArgs() != 0) {
      errs() << "gropt: --run target must take no arguments\n";
      return 1;
    }
    if (RP) {
      // The module was parallelized: execute under the simulated
      // parallel runtime (the retained model), then under the real
      // threaded runtime for a measured wall-clock column. The two
      // must agree bitwise (docs/THREADING.md).
      ParallelRunner Runner(*M, *RP, ParallelConfig());
      ParallelRunResult R = Runner.run();
      ThreadedConfig TC;
      TC.NumThreads = Opts.Threads;
      ThreadedRunner Threaded(*M, *RP, TC);
      ThreadedRunResult W = Threaded.run();
      if (W.MainResult != R.MainResult || W.Output != R.Output) {
        errs() << "gropt: threaded run diverged from the simulated "
                  "run\n";
        return 1;
      }
      const Interpreter &RI = Runner.getInterpreter();
      if (Opts.Json) {
        Json.add("result", R.MainResult);
        Json.add("total_work", R.TotalWork);
        Json.add("simulated_time", R.SimulatedTime);
        Json.add("parallel_sections", static_cast<uint64_t>(R.Sections));
        Json.add("threads", static_cast<uint64_t>(Threaded.threadCount()));
        Json.addRaw("wall_ms", formatDouble(W.WallMs, 3));
        Json.add("serial_sections", static_cast<uint64_t>(W.SerialSections));
        Json.addStr("exec", execKindName(RI.getExecKind()));
        Json.addStr("dispatch", dispatchModeName(RI.getDispatchMode()));
        Json.add("fused_pairs", RI.getBytecode().fusedPairs());
      } else {
        OS << R.Output;
        OS << "result: " << R.MainResult << " (work=" << R.TotalWork
           << ", simulated time=" << R.SimulatedTime
           << ", sections=" << static_cast<uint64_t>(R.Sections) << ")\n";
        OS << "threaded: " << formatDouble(W.WallMs, 3) << " ms on "
           << Threaded.threadCount() << " threads ("
           << static_cast<uint64_t>(W.SerialSections)
           << " serial sections, " << execKindName(RI.getExecKind())
           << '/' << dispatchModeName(RI.getDispatchMode()) << ")\n";
      }
    } else try {
      // Resource envelope for the run: the VM polls the deadline at
      // its counter-flush chunks and enforces the memory ceiling on
      // arena growth; exhaustion (and an injected vm_mem_grow fault,
      // possible as early as global allocation in the constructor)
      // throws BudgetError, caught below as a structured error —
      // never a hang or an abort.
      Interpreter I(*M, Opts.Exec);
      Budget RunBudget;
      const bool Governed = Opts.DeadlineMs >= 0 || Opts.MaxMem > 0;
      if (Opts.DeadlineMs >= 0)
        RunBudget.setDeadlineMs(static_cast<uint64_t>(Opts.DeadlineMs));
      if (Opts.MaxMem > 0)
        RunBudget.setMaxMemoryBytes(Opts.MaxMem);
      if (Governed)
        I.setBudget(&RunBudget);
      Type *RT = F->getReturnType();
      std::string ResultText;
      // A deadline that is already over (--deadline-ms=0) fails
      // deterministically before the first instruction.
      if (Governed && RunBudget.expired())
        throw BudgetError{RunBudget.tripped()};
      if (Opts.RunFunc == "main") {
        ResultText = std::to_string(I.runMain());
      } else {
        Slot R = I.call(F, {});
        if (RT->isVoid())
          ResultText = "void";
        else if (RT->isFloat64())
          ResultText = formatDoubleRoundTrip(R.F);
        else
          ResultText = std::to_string(R.I);
      }
      if (Opts.Json) {
        // Finite float results print as JSON numbers; the 0x-bits
        // form (non-finite) and "void" are not numbers, so quote them.
        if (ResultText == "void" || startsWith(ResultText, "0x"))
          Json.addStr("result", ResultText);
        else
          Json.addRaw("result", ResultText);
        Json.add("instructions", I.instructionCount());
        Json.addStr("exec", execKindName(I.getExecKind()));
        Json.addStr("dispatch", dispatchModeName(I.getDispatchMode()));
        Json.add("fused_pairs", I.getBytecode().fusedPairs());
      } else {
        OS << I.getOutput();
        OS << "result: " << ResultText << " (" << I.instructionCount()
           << " instructions, " << execKindName(I.getExecKind()) << '/'
           << dispatchModeName(I.getDispatchMode()) << ")\n";
      }
    } catch (const BudgetError &E) {
      if (Opts.Json) {
        Json.addStr("code", errCodeName(E.Code));
        OS << Json.str() << '\n';
      } else {
        errs() << "gropt: error: " << errCodeName(E.Code)
               << " (--run stopped by its resource budget)\n";
      }
      return 1;
    }
  }

  if (Opts.Json)
    OS << Json.str() << '\n';

  // Reprint: to -o when given, to stdout when nothing else was asked.
  bool DefaultPrint = !Opts.Detect && !Opts.Run && Opts.Passes.empty() &&
                      !Opts.Json && !Opts.DumpIR;
  if (!Opts.Output.empty()) {
    if (!writeFile(Opts.Output, moduleToString(*M))) {
      errs() << "gropt: cannot write " << Opts.Output << '\n';
      return 1;
    }
  } else if (DefaultPrint) {
    OS << moduleToString(*M);
  }
  return ExitCode;
}
