#!/usr/bin/env sh
# CI entry point: the tier-1 verify line plus a smoke run of the
# quickstart example. Fails on the first error.
set -eu

cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc 2>/dev/null || echo 2)"
(cd build && ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 2)")

# Smoke: the end-to-end quickstart must run and find the histogram.
./build/quickstart | grep -q "histogram reduction" || {
  echo "ci.sh: quickstart smoke test failed" >&2
  exit 1
}
echo "ci.sh: all green"
