#!/usr/bin/env sh
# CI entry point: the tier-1 verify line, a smoke run of the
# quickstart example, documentation consistency checks, the
# solver-parity gate (differential tests + the whole suite on the
# reference solver), the exec-parity gate (VM differential tests +
# the execution suites on the reference tree-walker), the
# dispatch-parity gate (dispatch differential tests + the whole suite
# under GR_DISPATCH=switch and =goto), re-runs of the
# test suite with the parallel detection driver forced to 2 workers,
# the parallel-scaling determinism bench, the batch-throughput bench
# with its speedup floor and baseline-JSON checks (plus its warm-cache
# mode), the detection-cache sweep with its >= 10x warm-speedup floor,
# the whole suite twice against one GR_CACHE_DIR (cold populate, then
# all-green warm), the whole suite twice under a fixed GR_FAULTS
# schedule (two seeds — graceful degradation over the full workload),
# worker/thread-count and GR_DISPATCH/GR_EXEC/GR_CACHE_MEM_ENTRIES/
# GR_POOL_THREADS/GR_FAULTS/GR_BENCH_REPS env validation smokes,
# --deadline-ms/--max-mem flag validation, gropt/grd cache smokes, a
# grd serving smoke, a grd deadline-degradation + recovery smoke, a
# threaded-run smoke, an ASan+UBSan lane (robustness + MiniC fuzz
# batteries by default, the full suite under GR_CI_SANITIZERS=1), the
# textual-IR round-trip
# gate (corpus dump -> reparse -> differential detection/execution
# check) with a gropt smoke over the checked-in examples/sum.gr, a
# MiniC frontend lane (the grammar fuzzer at 200 programs across all
# three engines, plus a gropt smoke compiling corpus/minic/hotspot.mc
# from disk), and the micro_solver / micro_interp / micro_parser /
# micro_frontend / fig15_speedup bench smokes (each compiled engine
# must match its reference oracle bitwise; fused dispatch must beat
# switch). Fails on the first error.
set -eu

cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc 2>/dev/null || echo 2)"
(cd build && ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 2)")

# Smoke: the end-to-end quickstart must run and find the histogram.
./build/quickstart | grep -q "histogram reduction" || {
  echo "ci.sh: quickstart smoke test failed" >&2
  exit 1
}

# Docs check 1: every source file referenced from docs/*.md and the
# README's catalogue must exist (stale docs fail CI).
for doc in docs/*.md README.md; do
  for ref in $(grep -oE '(src|bench|examples|tests|tools)/[A-Za-z0-9_/.-]+\.(h|cpp|md|gr)' "$doc" | sort -u); do
    [ -f "$ref" ] || {
      echo "ci.sh: $doc references missing file $ref" >&2
      exit 1
    }
  done
done

# Docs check 2: every idiom registered in the live registry must
# appear in the README catalogue table, with its spec and transform
# files present on disk. The listing is materialized first so a
# crashing --list fails CI instead of feeding the loop zero lines.
catalogue=$(mktemp)
./build/custom_idiom --list > "$catalogue" || {
  echo "ci.sh: custom_idiom --list failed" >&2
  exit 1
}
while IFS="$(printf '\t')" read -r name spec transform kernels; do
  grep -q "\`$name\`" README.md || {
    echo "ci.sh: idiom '$name' missing from the README catalogue" >&2
    exit 1
  }
  [ -f "$spec" ] || {
    echo "ci.sh: idiom '$name' spec file $spec does not exist" >&2
    exit 1
  }
  if [ "$transform" != "-" ] && [ ! -f "$transform" ]; then
    echo "ci.sh: idiom '$name' transform file $transform does not exist" >&2
    exit 1
  fi
done < "$catalogue"
rm -f "$catalogue"

# Solver-parity gate 1: the differential tests (random formulas,
# seeded/fuel-limited/capped searches, pipeline parity at 1 and 8
# workers) run explicitly. gtest exits 0 on an empty filter match, so
# the gate also requires a nonzero passed-test count — renaming the
# suites must break CI, not silently skip the oracle comparison.
parity_out=$(mktemp)
./build/gr_tests \
  --gtest_filter='*EngineFixture*:*SolverEngine*:*FunctionRef*' \
  > "$parity_out" || {
  echo "ci.sh: solver-parity differential tests failed" >&2
  rm -f "$parity_out"
  exit 1
}
grep -qE '\[  PASSED  \] [1-9][0-9]* tests?' "$parity_out" || {
  echo "ci.sh: solver-parity filter matched no tests (vacuous gate)" >&2
  rm -f "$parity_out"
  exit 1
}
rm -f "$parity_out"

# Solver-parity gate 2: the whole suite again on the reference
# solver. Every detection expectation must hold on both engines.
GR_SOLVER=reference ./build/gr_tests >/dev/null || {
  echo "ci.sh: test suite failed with GR_SOLVER=reference" >&2
  exit 1
}

# Exec-parity gate 1: the VM differential suite (full corpus plus the
# frontend programs under Bytecode vs Reference, step-limit and
# call-depth parity) runs explicitly, with the same non-vacuous
# passed-count requirement as the solver gate.
exec_parity_out=$(mktemp)
./build/gr_tests --gtest_filter='*VMCorpusParity*:*VMProgramParity*:*VMParity*' \
  > "$exec_parity_out" || {
  echo "ci.sh: exec-parity differential tests failed" >&2
  rm -f "$exec_parity_out"
  exit 1
}
grep -qE '\[  PASSED  \] [1-9][0-9]* tests?' "$exec_parity_out" || {
  echo "ci.sh: exec-parity filter matched no tests (vacuous gate)" >&2
  rm -f "$exec_parity_out"
  exit 1
}
rm -f "$exec_parity_out"

# Exec-parity gate 2: the interpreter, corpus and runtime suites again
# on the reference tree-walker. Every execution expectation must hold
# on both engines.
GR_EXEC=reference ./build/gr_tests \
  --gtest_filter='*Interpreter*:*Memory*:*Corpus*:*Runtime*:*Parallel*:*VM*' \
  >/dev/null || {
  echo "ci.sh: execution suites failed with GR_EXEC=reference" >&2
  exit 1
}

# Dispatch-parity gate 1: the dispatch differential suite (corpus
# under switch/goto/fused against the reference, step-limit sharpness
# across fused pairs, fusion coverage floor) runs explicitly with the
# same non-vacuous passed-count requirement.
dispatch_out=$(mktemp)
./build/gr_tests --gtest_filter='*Dispatch*' > "$dispatch_out" || {
  echo "ci.sh: dispatch differential tests failed" >&2
  rm -f "$dispatch_out"
  exit 1
}
grep -qE '\[  PASSED  \] [1-9][0-9]* tests?' "$dispatch_out" || {
  echo "ci.sh: dispatch filter matched no tests (vacuous gate)" >&2
  rm -f "$dispatch_out"
  exit 1
}
rm -f "$dispatch_out"

# Dispatch-parity gate 2: the whole suite under each non-default
# dispatch tier (the default already ran as fused). Every expectation
# must hold regardless of the dispatch loop executing the bytecode.
for mode in switch goto; do
  GR_DISPATCH=$mode ./build/gr_tests >/dev/null || {
    echo "ci.sh: test suite failed with GR_DISPATCH=$mode" >&2
    exit 1
  }
done

# The suite once more with module-level detection sharded over two
# lanes of the persistent pool: pipelines must be oblivious to the
# driver choice.
GR_DETECT_WORKERS=2 ./build/gr_tests >/dev/null || {
  echo "ci.sh: test suite failed with GR_DETECT_WORKERS=2" >&2
  exit 1
}

# The whole suite twice against one on-disk detection-cache directory:
# the first run populates it cold, the second must be all-green while
# serving warm from the same entries — cache correctness over the
# entire suite's detection workload, not just the cache battery.
cache_dir=$(mktemp -d)
GR_CACHE_DIR="$cache_dir" ./build/gr_tests >/dev/null || {
  echo "ci.sh: test suite failed while cold-populating GR_CACHE_DIR" >&2
  rm -rf "$cache_dir"
  exit 1
}
GR_CACHE_DIR="$cache_dir" ./build/gr_tests >/dev/null || {
  echo "ci.sh: test suite failed on a warm GR_CACHE_DIR" >&2
  rm -rf "$cache_dir"
  exit 1
}
rm -rf "$cache_dir"

# Fault-schedule lane: the whole suite under a fixed nonzero GR_FAULTS
# schedule over the degradable sites (failed cache publishes are
# retried/counted, failed pool spawns run inline). Every test must
# stay green — graceful degradation over the entire workload, not just
# the FaultSweep battery. A second seed shifts which checks fire.
GR_FAULTS='cache_write=1/5,cache_rename=1/7,pool_spawn=1/3' \
  ./build/gr_tests >/dev/null || {
  echo "ci.sh: test suite failed under the GR_FAULTS schedule" >&2
  exit 1
}
GR_FAULTS='cache_write=1/5,cache_rename=1/7,pool_spawn=1/3' \
  GR_FAULTS_SEED=3 ./build/gr_tests >/dev/null || {
  echo "ci.sh: test suite failed under the seeded GR_FAULTS schedule" >&2
  exit 1
}

# Worker-count validation: junk and absurd --workers values must be
# rejected with a diagnostic, not clamped or crashed on.
if ./build/gropt examples/sum.gr --detect --workers=banana >/dev/null 2>&1; then
  echo "ci.sh: gropt accepted --workers=banana" >&2
  exit 1
fi
./build/gropt examples/sum.gr --detect --workers=banana 2>&1 | grep -q "not a decimal integer" || {
  echo "ci.sh: gropt --workers=banana did not print the parse diagnostic" >&2
  exit 1
}
if ./build/gropt examples/sum.gr --detect --workers=99999 >/dev/null 2>&1; then
  echo "ci.sh: gropt accepted --workers=99999" >&2
  exit 1
fi

# Thread-count validation: --threads goes through the same
# parseWorkerCount as --workers and must reject junk, not clamp it.
if ./build/gropt examples/sum.gr --run --threads=banana >/dev/null 2>&1; then
  echo "ci.sh: gropt accepted --threads=banana" >&2
  exit 1
fi
./build/gropt examples/sum.gr --run --threads=banana 2>&1 \
  | grep -q "not a decimal integer" || {
  echo "ci.sh: gropt --threads=banana did not print the parse diagnostic" >&2
  exit 1
}

# Env validation: junk GR_DISPATCH / GR_EXEC values must warn once on
# stderr and fall back to the defaults instead of aborting the run.
GR_DISPATCH=bogus ./build/gropt examples/sum.gr --run 2>&1 \
  | grep -q "ignoring GR_DISPATCH: unknown dispatch mode" || {
  echo "ci.sh: junk GR_DISPATCH did not produce the fallback warning" >&2
  exit 1
}
GR_EXEC=bogus ./build/gropt examples/sum.gr --run 2>&1 \
  | grep -q "ignoring GR_EXEC: unknown engine" || {
  echo "ci.sh: junk GR_EXEC did not produce the fallback warning" >&2
  exit 1
}

# Env-knob validation: junk values of the resource knobs warn once and
# fall back to the defaults; they never abort or silently misconfigure.
GR_CACHE=mem GR_CACHE_MEM_ENTRIES=banana ./build/gropt examples/sum.gr \
  --detect 2>&1 | grep -q "ignoring GR_CACHE_MEM_ENTRIES" || {
  echo "ci.sh: junk GR_CACHE_MEM_ENTRIES did not produce the fallback warning" >&2
  exit 1
}
GR_POOL_THREADS=banana ./build/gropt examples/sum.gr -passes=parallelize \
  --run --threads=2 2>&1 | grep -q "ignoring GR_POOL_THREADS" || {
  echo "ci.sh: junk GR_POOL_THREADS did not produce the fallback warning" >&2
  exit 1
}
# Junk GR_FAULTS must warn and leave injection off, not half-configure.
GR_FAULTS=bogus_site=1/2 ./build/gropt examples/sum.gr --detect 2>&1 \
  | grep -q "ignoring GR_FAULTS" || {
  echo "ci.sh: junk GR_FAULTS did not produce the fallback warning" >&2
  exit 1
}

# Resource-flag validation: junk --deadline-ms / --max-mem values are
# configuration mistakes and must exit 1 with a diagnostic.
if ./build/gropt examples/sum.gr --run --deadline-ms=banana >/dev/null 2>&1; then
  echo "ci.sh: gropt accepted --deadline-ms=banana" >&2
  exit 1
fi
./build/gropt examples/sum.gr --run --deadline-ms=banana 2>&1 \
  | grep -q "bad --deadline-ms value" || {
  echo "ci.sh: gropt --deadline-ms=banana did not print the parse diagnostic" >&2
  exit 1
}
if ./build/gropt examples/sum.gr --run --max-mem=banana >/dev/null 2>&1; then
  echo "ci.sh: gropt accepted --max-mem=banana" >&2
  exit 1
fi
if ./build/grd --deadline-ms=banana >/dev/null 2>&1 </dev/null; then
  echo "ci.sh: grd accepted --deadline-ms=banana" >&2
  exit 1
fi

# Parallel scaling bench: asserts bitwise-identical stats across
# worker counts (median-of-N timing, warmup pass) and >= 1.5x
# critical-path speedup at 4 workers.
./build/table_parallel_scaling >/dev/null || {
  echo "ci.sh: table_parallel_scaling failed (determinism or speedup)" >&2
  exit 1
}

# Batch throughput bench smoke: a reduced corpus (CI time) through the
# batch driver at 1/2/4/8 lanes of the shared pool. Gates: merged
# stats bitwise identical to serial at every lane count, modeled
# 8-lane speedup >= 3x (wall-clock additionally gated when the host
# really has >= 8 cores), and the pooled batch never losing more than
# 30% wall to serial. Also records the machine-readable perf trail.
GR_BENCH_JSON_DIR=./build GR_BATCH_MODULES=120 GR_BENCH_REPS=3 \
  GR_MIN_BATCH_SPEEDUP=3.0 ./build/table_batch_throughput >/dev/null || {
  echo "ci.sh: table_batch_throughput failed (determinism or speedup)" >&2
  exit 1
}
[ -f ./build/BENCH_table_batch_throughput.json ] || {
  echo "ci.sh: BENCH_table_batch_throughput.json was not produced" >&2
  exit 1
}
for key in '"workers8.p50_ms"' '"workers8.p99_ms"' '"workers8.modules_per_s"' \
    '"all_identical": "yes"'; do
  grep -q "$key" ./build/BENCH_table_batch_throughput.json || {
    echo "ci.sh: BENCH_table_batch_throughput.json is missing $key" >&2
    exit 1
  }
done
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool ./build/BENCH_table_batch_throughput.json >/dev/null || {
    echo "ci.sh: BENCH_table_batch_throughput.json is not well-formed JSON" >&2
    exit 1
  }
fi

# The batch bench's warm-cache mode: the entire cached serving path at
# every lane count must stay bitwise cold-identical (the speedup
# floors are off — warm serving is a lookup, not a parallel solve).
GR_BATCH_WARM_CACHE=1 GR_BATCH_MODULES=120 GR_BENCH_REPS=2 \
  ./build/table_batch_throughput >/dev/null || {
  echo "ci.sh: table_batch_throughput warm-cache mode failed" >&2
  exit 1
}

# Junk GR_BENCH_REPS warns once and falls back to the default rep
# count; the bench still runs to completion (warm-cache mode keeps the
# timing floors out of this validation run).
bench_reps_err=$(mktemp)
GR_BENCH_REPS=banana GR_BATCH_WARM_CACHE=1 GR_BATCH_MODULES=40 \
  ./build/table_batch_throughput >/dev/null 2>"$bench_reps_err" || {
  echo "ci.sh: table_batch_throughput failed under junk GR_BENCH_REPS" >&2
  cat "$bench_reps_err" >&2
  rm -f "$bench_reps_err"
  exit 1
}
grep -q "ignoring GR_BENCH_REPS" "$bench_reps_err" || {
  echo "ci.sh: junk GR_BENCH_REPS did not produce the fallback warning" >&2
  rm -f "$bench_reps_err"
  exit 1
}
rm -f "$bench_reps_err"

# Detection-cache sweep: cold vs. warm over the replicated 40-program
# corpus. Gates (inside the binary): every cached sweep's stats
# bitwise identical to the uncached reference at 1/2/8 workers, the
# warm serial sweep all module-tier hits, the disk re-warm actually
# served from disk, and >= 10x warm speedup — serial ratio on every
# host, the 8-lane wall ratio additionally when the host has >= 8
# cores (recorded baseline: ~29x serial on the 1-core CI host).
GR_BENCH_JSON_DIR=./build GR_CACHE_MODULES=200 GR_BENCH_REPS=3 \
  GR_MIN_CACHE_SPEEDUP=10 ./build/table_cache_sweep >/dev/null || {
  echo "ci.sh: table_cache_sweep failed (correctness or speedup)" >&2
  exit 1
}
[ -f ./build/BENCH_table_cache_sweep.json ] || {
  echo "ci.sh: BENCH_table_cache_sweep.json was not produced" >&2
  exit 1
}
for key in '"speedup_serial"' '"speedup_at_8"' '"warm_serial_module_hits"' \
    '"diskwarm_disk_hits"' '"all_identical": "yes"'; do
  grep -q "$key" ./build/BENCH_table_cache_sweep.json || {
    echo "ci.sh: BENCH_table_cache_sweep.json is missing $key" >&2
    exit 1
  }
done
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool ./build/BENCH_table_cache_sweep.json >/dev/null || {
    echo "ci.sh: BENCH_table_cache_sweep.json is not well-formed JSON" >&2
    exit 1
  }
fi

# Label-order ablation: asserts the static order optimization
# recovers the adversarially-registered spec (same solutions, near
# hand-tuned candidate counts).
./build/ablation_solver_order >/dev/null || {
  echo "ci.sh: ablation_solver_order failed (order optimization regressed)" >&2
  exit 1
}

# Bench smoke: micro_solver runs detection on both engines and exits
# nonzero when the compiled engine's Solutions totals or decoded
# idiom counts diverge from the reference solver's. The registered
# google-benchmark timings are skipped (filter matches nothing); the
# parity section always runs. Also records the machine-readable perf
# trail next to the binary.
if [ -x ./build/micro_solver ]; then
  # The speedup floor is set well under the recorded ~2.2x baseline
  # so CI noise cannot flake it while a real regression still fails.
  GR_BENCH_JSON_DIR=./build GR_MIN_SOLVER_SPEEDUP=1.3 ./build/micro_solver \
    --benchmark_filter='NoneSuch^' >/dev/null 2>&1 || {
    echo "ci.sh: micro_solver engine-parity smoke failed" >&2
    exit 1
  }
  [ -f ./build/BENCH_micro_solver.json ] || {
    echo "ci.sh: BENCH_micro_solver.json was not produced" >&2
    exit 1
  }
fi

# Textual-IR round-trip gate: dump the whole corpus (plus frontend
# samples) to .gr files, reparse every file from disk, and
# differentially check the print->parse->print fixed point, idiom
# detection totals/statistics and VM execution against the in-memory
# originals. The summary line carries a nonzero idiom total so a
# vacuously idiom-free run fails the gate.
roundtrip_dir=$(mktemp -d)
roundtrip_out=$(mktemp)
./build/gropt --corpus-roundtrip "$roundtrip_dir" > "$roundtrip_out" || {
  echo "ci.sh: gropt --corpus-roundtrip failed" >&2
  cat "$roundtrip_out" >&2
  rm -rf "$roundtrip_dir"
  rm -f "$roundtrip_out"
  exit 1
}
grep -qE 'corpus-roundtrip: programs=[1-9][0-9]* failures=0 idioms=[1-9][0-9]* roundtrip=OK' \
  "$roundtrip_out" || {
  echo "ci.sh: corpus round trip is vacuous or failing" >&2
  cat "$roundtrip_out" >&2
  rm -rf "$roundtrip_dir"
  rm -f "$roundtrip_out"
  exit 1
}
rm -rf "$roundtrip_dir"
rm -f "$roundtrip_out"

# gropt smoke over the checked-in textual IR example: parsing, idiom
# detection and VM execution must all work from a .gr file on disk.
gropt_out=$(mktemp)
./build/gropt examples/sum.gr --detect --run > "$gropt_out" || {
  echo "ci.sh: gropt smoke run failed" >&2
  rm -f "$gropt_out"
  exit 1
}
grep -q 'scalar reductions:    1' "$gropt_out" || {
  echo "ci.sh: gropt smoke did not detect the scalar reduction" >&2
  cat "$gropt_out" >&2
  rm -f "$gropt_out"
  exit 1
}
grep -q 'result: 499500' "$gropt_out" || {
  echo "ci.sh: gropt smoke produced the wrong result" >&2
  cat "$gropt_out" >&2
  rm -f "$gropt_out"
  exit 1
}
rm -f "$gropt_out"

# MiniC corpus smoke: gropt must compile a .mc kernel from disk
# through the frontend pipeline, detect its reduction, and execute it.
minic_out=$(mktemp)
./build/gropt corpus/minic/hotspot.mc --detect --run > "$minic_out" || {
  echo "ci.sh: gropt MiniC smoke run failed" >&2
  cat "$minic_out" >&2
  rm -f "$minic_out"
  exit 1
}
grep -q 'scalar reductions:    1' "$minic_out" || {
  echo "ci.sh: gropt MiniC smoke did not detect the scalar reduction" >&2
  cat "$minic_out" >&2
  rm -f "$minic_out"
  exit 1
}
grep -q 'result: 0' "$minic_out" || {
  echo "ci.sh: gropt MiniC smoke produced the wrong result" >&2
  cat "$minic_out" >&2
  rm -f "$minic_out"
  exit 1
}
rm -f "$minic_out"

# A MiniC compile error must surface as a positioned diagnostic and
# exit 1, never a crash or a silent pass.
if printf 'int main() { return x; }' | ./build/gropt - --minic >/dev/null 2>&1; then
  echo "ci.sh: gropt accepted a MiniC program with an undefined name" >&2
  exit 1
fi
printf 'int main() { return x; }' | ./build/gropt - --minic 2>&1 \
  | grep -qE '1:[0-9]+:' || {
  echo "ci.sh: gropt MiniC error did not carry a line:col position" >&2
  exit 1
}

# MiniC fuzz lane: 200 random well-typed programs per CI run, each
# compiled, verified, round-tripped through the .gr printer/parser
# bitwise, and executed under the reference walker plus all three
# bytecode dispatch tiers with full ExecProfile parity. Non-vacuous:
# the filter must actually match the fuzz battery.
fuzz_out=$(mktemp)
GR_FUZZ_MINIC_ITERS=200 ./build/gr_tests --gtest_filter='MiniCFuzz.*' \
  > "$fuzz_out" || {
  echo "ci.sh: MiniC fuzz lane failed" >&2
  cat "$fuzz_out" >&2
  rm -f "$fuzz_out"
  exit 1
}
grep -qE '\[  PASSED  \] [1-9][0-9]* tests?' "$fuzz_out" || {
  echo "ci.sh: MiniC fuzz filter matched no tests (vacuous gate)" >&2
  rm -f "$fuzz_out"
  exit 1
}
rm -f "$fuzz_out"

# Threaded-run smoke: a parallelized module must execute on real pool
# threads, agree with the simulated runtime (checked inside gropt),
# and report the thread count it ran on.
threaded_out=$(mktemp)
./build/gropt examples/sum.gr -passes=parallelize --run --threads=8 \
  > "$threaded_out" || {
  echo "ci.sh: gropt threaded-run smoke failed" >&2
  rm -f "$threaded_out"
  exit 1
}
grep -q 'result: 499500' "$threaded_out" || {
  echo "ci.sh: gropt threaded run produced the wrong result" >&2
  cat "$threaded_out" >&2
  rm -f "$threaded_out"
  exit 1
}
grep -q 'on 8 threads' "$threaded_out" || {
  echo "ci.sh: gropt threaded run did not report 8 threads" >&2
  cat "$threaded_out" >&2
  rm -f "$threaded_out"
  exit 1
}
rm -f "$threaded_out"

# Serving smoke: the grd server must answer a request for the same
# file over stdin and report it in the closing aggregate line.
grd_out=$(mktemp)
printf 'examples/sum.gr\n!quit\n' | ./build/grd > "$grd_out" || {
  echo "ci.sh: grd smoke run failed" >&2
  rm -f "$grd_out"
  exit 1
}
grep -q '^ok examples/sum.gr .*scalars=1' "$grd_out" || {
  echo "ci.sh: grd did not serve examples/sum.gr" >&2
  cat "$grd_out" >&2
  rm -f "$grd_out"
  exit 1
}
rm -f "$grd_out"

# Serving deadline smoke: a request under an already-expired deadline
# must come back as a structured deadline_exceeded error — and the
# NEXT request on the same connection must succeed normally (warm
# server state survives a degraded request). The aggregate counts the
# error under its code.
grd_deadline_out=$(mktemp)
printf '!deadline-ms 0\nexamples/sum.gr\n!deadline-ms none\nexamples/sum.gr\n!stats\n!quit\n' \
  | ./build/grd > "$grd_deadline_out" || {
  echo "ci.sh: grd deadline smoke run failed" >&2
  rm -f "$grd_deadline_out"
  exit 1
}
grep -q '^error examples/sum.gr: deadline_exceeded degraded=1' "$grd_deadline_out" || {
  echo "ci.sh: grd did not return a structured deadline_exceeded error" >&2
  cat "$grd_deadline_out" >&2
  rm -f "$grd_deadline_out"
  exit 1
}
grep -q '^ok examples/sum.gr .*scalars=1' "$grd_deadline_out" || {
  echo "ci.sh: grd did not recover after the deadline-degraded request" >&2
  cat "$grd_deadline_out" >&2
  rm -f "$grd_deadline_out"
  exit 1
}
grep -q 'err.deadline_exceeded=1' "$grd_deadline_out" || {
  echo "ci.sh: grd aggregate did not count the deadline_exceeded error" >&2
  cat "$grd_deadline_out" >&2
  rm -f "$grd_deadline_out"
  exit 1
}
rm -f "$grd_deadline_out"

# gropt cache smoke: --cache must enable the detection cache and
# surface its counters in the JSON report.
./build/gropt examples/sum.gr --detect --cache --json \
  | grep -q '"cache_function_misses"' || {
  echo "ci.sh: gropt --cache --json did not report cache counters" >&2
  exit 1
}

# Serving cache smoke: with --cache, a byte-identical repeat request
# must be answered from the module tier — first response cache=miss,
# second cache=hit, both otherwise identical — and !cache-stats plus
# the aggregate's request-level cache_hits must agree.
grd_cache_out=$(mktemp)
printf 'examples/sum.gr\nexamples/sum.gr\n!cache-stats\n!stats\n!quit\n' \
  | ./build/grd --cache > "$grd_cache_out" || {
  echo "ci.sh: grd --cache smoke run failed" >&2
  rm -f "$grd_cache_out"
  exit 1
}
miss_count=$(grep -c '^ok examples/sum.gr .*cache=miss' "$grd_cache_out" || true)
hit_count=$(grep -c '^ok examples/sum.gr .*cache=hit ' "$grd_cache_out" || true)
if [ "$miss_count" != 1 ] || [ "$hit_count" != 1 ]; then
  echo "ci.sh: grd --cache repeat request was not served from the cache" \
    "(miss=$miss_count hit=$hit_count)" >&2
  cat "$grd_cache_out" >&2
  rm -f "$grd_cache_out"
  exit 1
fi
# The two responses must agree on everything but the cache marker and
# the volatile latency field.
if [ "$(grep '^ok examples/sum.gr ' "$grd_cache_out" \
        | sed 's/cache=[a-z]* ms=[0-9.]*$//' | sort -u | wc -l)" != 1 ]; then
  echo "ci.sh: grd cached response diverged from the cold one" >&2
  cat "$grd_cache_out" >&2
  rm -f "$grd_cache_out"
  exit 1
fi
grep -q '^cache hits=' "$grd_cache_out" || {
  echo "ci.sh: grd !cache-stats did not answer" >&2
  cat "$grd_cache_out" >&2
  rm -f "$grd_cache_out"
  exit 1
}
grep -q 'cache_hits=1 cache_misses=1' "$grd_cache_out" || {
  echo "ci.sh: grd aggregate did not count one cache hit and one miss" >&2
  cat "$grd_cache_out" >&2
  rm -f "$grd_cache_out"
  exit 1
}
rm -f "$grd_cache_out"

# Bench smoke: micro_parser reparses the dumped corpus (exits nonzero
# on any parse failure or fixed-point violation) and records the
# machine-readable parse-throughput trail.
GR_BENCH_JSON_DIR=./build ./build/micro_parser >/dev/null || {
  echo "ci.sh: micro_parser parity smoke failed" >&2
  exit 1
}
[ -f ./build/BENCH_micro_parser.json ] || {
  echo "ci.sh: BENCH_micro_parser.json was not produced" >&2
  exit 1
}

# Bench smoke: micro_frontend compiles the whole corpus through the
# MiniC pipeline (exits nonzero on any compile failure, nondeterminism
# or round-trip violation) and records the compile-throughput trail.
GR_BENCH_JSON_DIR=./build ./build/micro_frontend >/dev/null || {
  echo "ci.sh: micro_frontend parity smoke failed" >&2
  exit 1
}
[ -f ./build/BENCH_micro_frontend.json ] || {
  echo "ci.sh: BENCH_micro_frontend.json was not produced" >&2
  exit 1
}

# Bench smoke: micro_interp runs every kernel on both execution
# engines and exits nonzero when results, output or the ExecProfile
# diverge, or when the bytecode VM's arithmetic-kernel speedup over
# the tree-walker drops below the floor (recorded baseline ~8.8x; the
# 2x floor is the acceptance bar with ample noise margin). The
# dispatch-ablation section re-runs every kernel under all three
# dispatch tiers, gates bitwise parity across tiers, and enforces the
# fused-over-switch total speedup floor. The budget-checkpoint rework
# made the switch tier ~20% faster (its GR_STEP slow path is no
# longer a noreturn call) without moving goto/fused, narrowing the
# recorded ratio from ~1.3x to ~1.1x; the floor is retuned to keep
# the same noise margin below the recorded value.
if [ -x ./build/micro_interp ]; then
  GR_BENCH_JSON_DIR=./build GR_MIN_INTERP_SPEEDUP=2.0 \
    GR_MIN_DISPATCH_SPEEDUP=1.05 ./build/micro_interp \
    --benchmark_filter='NoneSuch^' >/dev/null 2>&1 || {
    echo "ci.sh: micro_interp engine-parity smoke failed" >&2
    exit 1
  }
  [ -f ./build/BENCH_micro_interp.json ] || {
    echo "ci.sh: BENCH_micro_interp.json was not produced" >&2
    exit 1
  }
  for key in '"fused_speedup"' '"goto_speedup"' '"fused_pairs"' \
      '"arith.fused_ms"' '"dispatch_parity": "ok"'; do
    grep -q "$key" ./build/BENCH_micro_interp.json || {
      echo "ci.sh: BENCH_micro_interp.json is missing $key" >&2
      exit 1
    }
  done
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool ./build/BENCH_micro_interp.json >/dev/null || {
      echo "ci.sh: BENCH_micro_interp.json is not well-formed JSON" >&2
      exit 1
    }
  fi
fi

# Bench smoke: fig15_speedup replays the reduction-speedup study —
# simulated speedups per suite plus measured ThreadedRunner wall
# columns at 1/2/8 threads, each gated bitwise against the sequential
# output inside the binary (the wall-speedup floor arms only on hosts
# with >= 8 real cores).
GR_BENCH_JSON_DIR=./build ./build/fig15_speedup >/dev/null || {
  echo "ci.sh: fig15_speedup failed (parity or speedup)" >&2
  exit 1
}
[ -f ./build/BENCH_fig15_speedup.json ] || {
  echo "ci.sh: BENCH_fig15_speedup.json was not produced" >&2
  exit 1
}
for key in '"EP.wall_seq_ms"' '"EP.wall8_ms"' '"EP.wall_speedup8"' \
    '"cores"' '"max_wall_speedup8"'; do
  grep -q "$key" ./build/BENCH_fig15_speedup.json || {
    echo "ci.sh: BENCH_fig15_speedup.json is missing $key" >&2
    exit 1
  }
done
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool ./build/BENCH_fig15_speedup.json >/dev/null || {
    echo "ci.sh: BENCH_fig15_speedup.json is not well-formed JSON" >&2
    exit 1
  }
fi

# Sanitizer lane: an ASan+UBSan build of the test suite. By default
# the robustness battery and the MiniC grammar fuzzer run under it —
# the fault/budget paths (exception unwind, retry loops, inline
# degradation, cache I/O fallbacks) are where lifetime bugs would
# hide, and the fuzzer drives the frontend/VM over randomized
# well-typed programs where UB would hide. GR_CI_SANITIZERS=1 runs
# the full suite instrumented.
cmake -B build-san -S . \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  >/dev/null
cmake --build build-san -j "$(nproc 2>/dev/null || echo 2)" \
  --target gr_tests >/dev/null
san_filter='FaultSites.*:FaultSweep.*:BudgetGov.*:MiniCFuzz.*'
if [ "${GR_CI_SANITIZERS:-0}" = "1" ]; then
  san_filter='*'
fi
GR_FUZZ_MINIC_ITERS=50 ./build-san/gr_tests --gtest_filter="$san_filter" \
  >/dev/null || {
  echo "ci.sh: sanitizer lane failed (filter: $san_filter)" >&2
  exit 1
}
# The instrumented robustness battery again under an active fault
# schedule: the degradation paths themselves, sanitized.
GR_FAULTS='cache_write=1/5,cache_rename=1/7,pool_spawn=1/3' \
  ./build-san/gr_tests \
  --gtest_filter='FaultSites.*:FaultSweep.*:BudgetGov.*' >/dev/null || {
  echo "ci.sh: sanitizer lane failed under the GR_FAULTS schedule" >&2
  exit 1
}

echo "ci.sh: all green"
