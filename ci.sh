#!/usr/bin/env sh
# CI entry point: the tier-1 verify line, a smoke run of the
# quickstart example, documentation consistency checks, a re-run of
# the test suite with the parallel detection driver forced to 2
# workers, and the parallel-scaling determinism bench. Fails on the
# first error.
set -eu

cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc 2>/dev/null || echo 2)"
(cd build && ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 2)")

# Smoke: the end-to-end quickstart must run and find the histogram.
./build/quickstart | grep -q "histogram reduction" || {
  echo "ci.sh: quickstart smoke test failed" >&2
  exit 1
}

# Docs check 1: every source file referenced from docs/*.md and the
# README's catalogue must exist (stale docs fail CI).
for doc in docs/*.md README.md; do
  for ref in $(grep -oE '(src|bench|examples|tests)/[A-Za-z0-9_/.-]+\.(h|cpp|md)' "$doc" | sort -u); do
    [ -f "$ref" ] || {
      echo "ci.sh: $doc references missing file $ref" >&2
      exit 1
    }
  done
done

# Docs check 2: every idiom registered in the live registry must
# appear in the README catalogue table, with its spec and transform
# files present on disk. The listing is materialized first so a
# crashing --list fails CI instead of feeding the loop zero lines.
catalogue=$(mktemp)
./build/custom_idiom --list > "$catalogue" || {
  echo "ci.sh: custom_idiom --list failed" >&2
  exit 1
}
while IFS="$(printf '\t')" read -r name spec transform kernels; do
  grep -q "\`$name\`" README.md || {
    echo "ci.sh: idiom '$name' missing from the README catalogue" >&2
    exit 1
  }
  [ -f "$spec" ] || {
    echo "ci.sh: idiom '$name' spec file $spec does not exist" >&2
    exit 1
  }
  if [ "$transform" != "-" ] && [ ! -f "$transform" ]; then
    echo "ci.sh: idiom '$name' transform file $transform does not exist" >&2
    exit 1
  fi
done < "$catalogue"
rm -f "$catalogue"

# The suite once more with module-level detection sharded over two
# workers: pipelines must be oblivious to the driver choice.
GR_DETECT_WORKERS=2 ./build/gr_tests >/dev/null || {
  echo "ci.sh: test suite failed with GR_DETECT_WORKERS=2" >&2
  exit 1
}

# Parallel scaling bench: asserts bitwise-identical stats across
# worker counts and >= 1.5x critical-path speedup at 4 workers.
./build/table_parallel_scaling >/dev/null || {
  echo "ci.sh: table_parallel_scaling failed (determinism or speedup)" >&2
  exit 1
}

echo "ci.sh: all green"
